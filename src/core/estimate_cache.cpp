#include "core/estimate_cache.hpp"

#include <algorithm>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/telemetry/telemetry.hpp"

namespace gnntrans::core {

namespace {

/// Process-global cache metrics (shared by every cache instance — the
/// dashboards see aggregate hit/miss/eviction traffic). Counters follow the
/// ServingMetrics registration pattern; residency gauges are last-write-wins
/// across instances.
struct CacheMetrics {
  telemetry::Counter hits = telemetry::MetricsRegistry::global().counter(
      "gnntrans_cache_hits_total",
      "Estimate-cache lookups served from a stored entry");
  telemetry::Counter misses = telemetry::MetricsRegistry::global().counter(
      "gnntrans_cache_misses_total",
      "Estimate-cache lookups that fell through to the model path");
  telemetry::Counter evictions = telemetry::MetricsRegistry::global().counter(
      "gnntrans_cache_evictions_total",
      "Entries evicted by CLOCK second-chance under byte pressure");
  telemetry::Counter bytes = telemetry::MetricsRegistry::global().counter(
      "gnntrans_cache_bytes_total",
      "Cumulative bytes inserted into the estimate cache");
  telemetry::Gauge resident_bytes = telemetry::MetricsRegistry::global().gauge(
      "gnntrans_cache_resident_bytes",
      "Bytes currently resident in the estimate cache");
  telemetry::Gauge entries = telemetry::MetricsRegistry::global().gauge(
      "gnntrans_cache_entries", "Entries currently resident");

  static const CacheMetrics& get() {
    static const CacheMetrics metrics;
    return metrics;
  }
};

/// splitmix64 — mixes the two (already individually finalized) key halves
/// into shard/bucket indices so shard routing is uncorrelated with either
/// half alone.
std::uint64_t mix(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

std::uint64_t key_hash(const CacheKey& key) noexcept {
  return mix(key.net ^ (key.ctx << 32 | key.ctx >> 32));
}

struct KeyHash {
  std::size_t operator()(const CacheKey& key) const noexcept {
    return static_cast<std::size_t>(key_hash(key));
  }
};

/// Approximate resident footprint of one entry: the stored estimates plus
/// map-node/slot bookkeeping. Only has to be consistent, not exact — the
/// byte budget is a pressure valve, not an allocator.
constexpr std::size_t kEntryOverheadBytes = 96;

std::size_t entry_bytes(std::size_t path_count) noexcept {
  return kEntryOverheadBytes + path_count * sizeof(PathEstimate);
}

std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

/// One shard: padded to a cache line so neighboring shards' mutexes never
/// false-share. Slots live in a flat vector the CLOCK hand sweeps; the index
/// maps keys to slot positions, and vacated slots recycle through a free
/// list so the hand's orbit stays dense.
struct alignas(64) EstimateCache::Shard {
  struct Slot {
    CacheKey key;
    std::vector<PathEstimate> paths;
    std::size_t bytes = 0;
    std::uint8_t ref = 0;  ///< CLOCK second-chance bit, set on hit
    bool occupied = false;
  };

  std::mutex mutex;
  std::unordered_map<CacheKey, std::size_t, KeyHash> index;
  std::vector<Slot> slots;
  std::vector<std::size_t> free_slots;
  std::size_t clock_hand = 0;
  std::size_t resident_bytes = 0;
};

EstimateCache::EstimateCache(EstimateCacheConfig config) : config_(config) {
  const std::size_t shards =
      round_up_pow2(std::max<std::size_t>(1, config_.shards));
  shard_mask_ = shards - 1;
  shard_budget_ = std::max<std::size_t>(1, config_.capacity_bytes / shards);
  shards_ = std::make_unique<Shard[]>(shards);
}

EstimateCache::~EstimateCache() = default;

std::size_t EstimateCache::shard_index(const CacheKey& key) const noexcept {
  return static_cast<std::size_t>(key_hash(key)) & shard_mask_;
}

bool EstimateCache::lookup(const CacheKey& key,
                           std::vector<PathEstimate>* out) {
  Shard& shard = shards_[shard_index(key)];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      Shard::Slot& slot = shard.slots[it->second];
      slot.ref = 1;
      // Copy under the lock: the stored bytes are the hit's return value, so
      // an eviction racing this lookup must not tear them.
      *out = slot.paths;
      hits_.fetch_add(1, std::memory_order_relaxed);
      CacheMetrics::get().hits.inc();
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  CacheMetrics::get().misses.inc();
  return false;
}

void EstimateCache::insert(const CacheKey& key,
                           const std::vector<PathEstimate>& paths) {
  const std::size_t bytes = entry_bytes(paths.size());
  // An entry bigger than a whole shard's budget would evict the shard empty
  // and still not fit; drop it instead of thrashing.
  if (bytes > shard_budget_) return;

  // Build the stored copy outside the lock, re-tagged kCached so a hit
  // returns it verbatim (values stay the model path's exact bytes).
  std::vector<PathEstimate> stored = paths;
  for (PathEstimate& pe : stored) pe.provenance = EstimateProvenance::kCached;

  std::size_t evicted = 0;
  std::size_t evicted_bytes = 0;
  Shard& shard = shards_[shard_index(key)];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.index.contains(key)) {
      // Two workers computed the same content concurrently; the copies are
      // identical by construction, keep the first.
      shard.slots[shard.index.at(key)].ref = 1;
      return;
    }
    // CLOCK second-chance to budget: a set ref bit buys one sweep of grace,
    // so recently hit entries survive a pressure burst.
    while (shard.resident_bytes + bytes > shard_budget_ &&
           !shard.index.empty()) {
      const std::size_t hand = shard.clock_hand;
      shard.clock_hand = (shard.clock_hand + 1) % shard.slots.size();
      Shard::Slot& victim = shard.slots[hand];
      if (!victim.occupied) continue;
      if (victim.ref != 0) {
        victim.ref = 0;
        continue;
      }
      shard.index.erase(victim.key);
      shard.resident_bytes -= victim.bytes;
      evicted_bytes += victim.bytes;
      ++evicted;
      victim = Shard::Slot{};
      shard.free_slots.push_back(hand);
    }

    std::size_t idx;
    if (!shard.free_slots.empty()) {
      idx = shard.free_slots.back();
      shard.free_slots.pop_back();
    } else {
      idx = shard.slots.size();
      shard.slots.emplace_back();
    }
    Shard::Slot& slot = shard.slots[idx];
    slot.key = key;
    slot.paths = std::move(stored);
    slot.bytes = bytes;
    slot.ref = 0;
    slot.occupied = true;
    shard.index.emplace(key, idx);
    shard.resident_bytes += bytes;
  }

  insertions_.fetch_add(1, std::memory_order_relaxed);
  inserted_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  const CacheMetrics& metrics = CacheMetrics::get();
  metrics.bytes.inc(bytes);
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    metrics.evictions.inc(evicted);
    // Eviction pressure is the signal that the cache is undersized for the
    // working set; leave a flight-recorder breadcrumb for post-mortems.
    telemetry::FlightRecorder& flight = telemetry::FlightRecorder::global();
    if (flight.enabled()) {
      telemetry::FlightRecord fr;
      fr.set_net("estimate_cache");
      fr.set_outcome("eviction_pressure");
      fr.total_us = static_cast<float>(evicted);  // victims this insert
      fr.arena_peak_bytes = static_cast<std::uint32_t>(
          std::min<std::size_t>(evicted_bytes, UINT32_MAX));
      flight.record(fr);
    }
  }

  // Residency gauges: cheap per-shard reads, last-write-wins across
  // concurrent inserts (a gauge, not a ledger).
  const EstimateCacheStats snap = stats();
  metrics.resident_bytes.set(static_cast<double>(snap.resident_bytes));
  metrics.entries.set(static_cast<double>(snap.entries));
}

EstimateCacheStats EstimateCache::stats() const {
  EstimateCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.insertions = insertions_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.inserted_bytes = inserted_bytes_.load(std::memory_order_relaxed);
  for (std::size_t s = 0; s <= shard_mask_; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    out.resident_bytes += shard.resident_bytes;
    out.entries += shard.index.size();
  }
  return out;
}

void EstimateCache::clear() {
  for (std::size_t s = 0; s <= shard_mask_; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.index.clear();
    shard.slots.clear();
    shard.free_slots.clear();
    shard.clock_hand = 0;
    shard.resident_bytes = 0;
  }
  const CacheMetrics& metrics = CacheMetrics::get();
  metrics.resident_bytes.set(0.0);
  metrics.entries.set(0.0);
}

}  // namespace gnntrans::core
