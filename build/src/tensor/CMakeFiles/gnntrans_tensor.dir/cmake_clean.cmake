file(REMOVE_RECURSE
  "CMakeFiles/gnntrans_tensor.dir/init.cpp.o"
  "CMakeFiles/gnntrans_tensor.dir/init.cpp.o.d"
  "CMakeFiles/gnntrans_tensor.dir/ops.cpp.o"
  "CMakeFiles/gnntrans_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/gnntrans_tensor.dir/optim.cpp.o"
  "CMakeFiles/gnntrans_tensor.dir/optim.cpp.o.d"
  "CMakeFiles/gnntrans_tensor.dir/serialize.cpp.o"
  "CMakeFiles/gnntrans_tensor.dir/serialize.cpp.o.d"
  "CMakeFiles/gnntrans_tensor.dir/tensor.cpp.o"
  "CMakeFiles/gnntrans_tensor.dir/tensor.cpp.o.d"
  "libgnntrans_tensor.a"
  "libgnntrans_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnntrans_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
