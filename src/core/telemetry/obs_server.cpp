#include "core/telemetry/obs_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "core/telemetry/flight_recorder.hpp"
#include "core/telemetry/log.hpp"
#include "core/telemetry/metrics.hpp"
#include "core/telemetry/net_io.hpp"
#include "core/telemetry/quality.hpp"
#include "core/telemetry/tracez.hpp"

namespace gnntrans::telemetry {

namespace {

std::atomic<bool> g_model_ready{false};

constexpr const char* kServerVersion = "gnntrans-obs/1";

const char* status_text(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 503: return "Service Unavailable";
  }
  return "Internal Server Error";
}

/// Full HTTP/1.1 response; every reply closes the connection (no keep-alive
/// state machine — scrapes are one-shot).
std::string make_response(int status, std::string_view content_type,
                          std::string_view body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    status_text(status) + "\r\n";
  out += "Server: ";
  out += kServerVersion;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

/// Lifetime serving failure rate from the global registry. counter() is
/// idempotent by name, so this works before the serving path has registered
/// anything (both read 0).
double serving_failure_rate() {
  auto& registry = MetricsRegistry::global();
  const double nets =
      static_cast<double>(registry.counter("gnntrans_serving_nets_total").value());
  const double failed = static_cast<double>(
      registry.counter("gnntrans_serving_failed_total").value());
  return nets > 0.0 ? failed / nets : 0.0;
}

struct ObsMetrics {
  Counter requests = MetricsRegistry::global().counter(
      "gnntrans_obs_requests_total", "HTTP requests answered by the obs server");
  Counter errors = MetricsRegistry::global().counter(
      "gnntrans_obs_request_errors_total",
      "Obs-server requests answered with a non-2xx status");

  static const ObsMetrics& get() {
    static const ObsMetrics metrics;
    return metrics;
  }
};

/// Value of \p key in a "k=v&k=v" query string; empty when absent. No
/// percent-decoding — the accepted values (counts, net names) are plain.
std::string query_param(const std::string& query, std::string_view key) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp && eq - pos == key.size() &&
        query.compare(pos, key.size(), key) == 0)
      return query.substr(eq + 1, amp - eq - 1);
    pos = amp + 1;
  }
  return {};
}

const std::chrono::steady_clock::time_point g_process_epoch =
    std::chrono::steady_clock::now();

std::string buildinfo_json() {
  const double uptime = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - g_process_epoch)
                            .count();
  std::ostringstream out;
  out << "{\"name\":\"gnntrans\",\"server\":\"" << kServerVersion
      << "\",\"compiler\":\"" << json_escape(__VERSION__)
      << "\",\"cxx_standard\":" << __cplusplus << ",\"pid\":" << ::getpid()
      << ",\"uptime_seconds\":" << uptime
      << ",\"model_ready\":" << (model_ready() ? "true" : "false") << "}";
  return out.str();
}

}  // namespace

void set_model_ready(bool ready) noexcept {
  g_model_ready.store(ready, std::memory_order_release);
}

bool model_ready() noexcept {
  return g_model_ready.load(std::memory_order_acquire);
}

ObsServer::ObsServer(ObsServerConfig config) : config_(std::move(config)) {}

ObsServer::~ObsServer() { stop(); }

void ObsServer::start() {
  if (running()) return;

  // Shared listener helper: SO_REUSEADDR + EADDRINUSE retry/backoff (the
  // back-to-back ctest port-reuse flake) + port-0 ephemeral resolution.
  std::string error;
  listen_fd_ = bind_listener(config_.addr, config_.port, config_.backlog,
                             &bound_port_, &error);
  if (listen_fd_ < 0) throw std::runtime_error("obs server: " + error);

  if (::pipe(wake_pipe_) < 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("obs server: self-pipe failed: " + detail);
  }

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
}

void ObsServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  const char wake = 'q';
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &wake, 1);
  if (thread_.joinable()) thread_.join();
  for (int* fd : {&listen_fd_, &wake_pipe_[0], &wake_pipe_[1]}) {
    if (*fd >= 0) ::close(*fd);
    *fd = -1;
  }
}

void ObsServer::serve_loop() {
  GNNTRANS_LOG_INFO("obs", "serving /metrics /metrics.json /healthz /readyz "
                           "/buildinfo /flight /quality /tracez on %s:%u",
                    config_.addr.c_str(), bound_port_);
  while (running_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents) break;  // self-pipe: stop() requested
    if (!(fds[0].revents & POLLIN)) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    // Non-blocking so send_all's write timeout can engage on a slow client
    // (a blocking send would stall the single serving thread indefinitely).
    const int flags = ::fcntl(conn, F_GETFL, 0);
    if (flags >= 0) ::fcntl(conn, F_SETFL, flags | O_NONBLOCK);
    handle_connection(conn);
    ::close(conn);
  }
}

void ObsServer::handle_connection(int fd) {
  const ObsMetrics& metrics = ObsMetrics::get();
  metrics.requests.inc();

  const auto respond = [&](int status, std::string_view type,
                           std::string_view body) {
    if (status >= 400) metrics.errors.inc();
    // send_all reports failure (and counts it in the shared
    // gnntrans_obs_send_failures_total) instead of silently truncating the
    // scrape; a slow client is bounded by the same request timeout as reads.
    if (!send_all(fd, make_response(status, type, body),
                  config_.request_timeout_ms)) {
      GNNTRANS_LOG_WARN("obs",
                        "dropped %zu-byte response (status %d): client gone "
                        "or write timed out",
                        body.size(), status);
    }
  };

  // Read until the end of the request head, a size/time bound, or EOF.
  std::string request;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(config_.request_timeout_ms);
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    if (request.size() > config_.max_request_bytes)
      return respond(413, "text/plain", "request too large\n");
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0)
      return respond(408, "text/plain", "request timeout\n");
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) return respond(408, "text/plain", "request timeout\n");
    char buf[2048];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK))
      continue;
    if (n <= 0) break;  // client closed before finishing the head
    request.append(buf, static_cast<std::size_t>(n));
  }

  // Request line: METHOD SP PATH SP VERSION.
  const std::size_t line_end = request.find_first_of("\r\n");
  const std::string line = request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1)
    return respond(400, "text/plain", "malformed request line\n");
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string query_string;
  if (const std::size_t query = path.find('?'); query != std::string::npos) {
    query_string = path.substr(query + 1);
    path.resize(query);
  }
  if (method != "GET")
    return respond(405, "text/plain", "only GET is supported\n");

  if (path == "/metrics") {
    return respond(200, "text/plain; version=0.0.4; charset=utf-8",
                   MetricsRegistry::global().prometheus_text());
  }
  if (path == "/metrics.json") {
    return respond(200, "application/json",
                   MetricsRegistry::global().json_text());
  }
  if (path == "/healthz") {
    return respond(200, "text/plain", "ok\n");
  }
  if (path == "/readyz") {
    if (!model_ready())
      return respond(503, "text/plain", "unready: no model loaded\n");
    const double rate = serving_failure_rate();
    if (rate > config_.max_failure_rate) {
      char body[96];
      std::snprintf(body, sizeof(body),
                    "unready: failure rate %.3f exceeds %.3f\n", rate,
                    config_.max_failure_rate);
      return respond(503, "text/plain", body);
    }
    // Accuracy-aware readiness: a drifted feature distribution or a blown
    // shadow-residual quantile means the model is answering fast but can no
    // longer be trusted — stop routing traffic here, same as a crash would.
    if (std::string reason;
        QualityMonitor::global().degraded(&reason)) {
      return respond(503, "text/plain",
                     "unready: model quality degraded (" + reason + ")\n");
    }
    return respond(200, "text/plain", "ready\n");
  }
  if (path == "/buildinfo") {
    return respond(200, "application/json", buildinfo_json());
  }
  if (path == "/flight") {
    FlightRecorder::JsonFilter filter;
    if (const std::string n = query_param(query_string, "n"); !n.empty())
      filter.limit =
          static_cast<std::size_t>(std::strtoull(n.c_str(), nullptr, 10));
    filter.net = query_param(query_string, "net");
    std::ostringstream out;
    FlightRecorder::global().write_json(out, filter);
    return respond(200, "application/json", out.str());
  }
  if (path == "/quality") {
    return respond(200, "application/json",
                   QualityMonitor::global().state_json());
  }
  if (path == "/tracez") {
    std::size_t limit = 0;
    if (const std::string n = query_param(query_string, "n"); !n.empty())
      limit = static_cast<std::size_t>(std::strtoull(n.c_str(), nullptr, 10));
    std::ostringstream out;
    RequestTraceStore::global().write_json(out, limit);
    return respond(200, "application/json", out.str());
  }
  respond(404, "text/plain", "unknown path\n");
}

}  // namespace gnntrans::telemetry
