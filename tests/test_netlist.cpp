// Tests for design generation, STA propagation, and DAG path counting.
#include <gtest/gtest.h>

#include <algorithm>

#include "netlist/design.hpp"
#include "netlist/generate.hpp"
#include "netlist/sta.hpp"
#include "rcnet/paths.hpp"

namespace {

using namespace gnntrans;
using namespace gnntrans::netlist;

DesignGenConfig small_config(std::uint64_t seed = 5) {
  DesignGenConfig cfg;
  cfg.startpoints = 6;
  cfg.levels = 4;
  cfg.cells_per_level = 8;
  cfg.seed = seed;
  return cfg;
}

TEST(DesignGen, GeneratedDesignValidates) {
  const auto lib = cell::CellLibrary::make_default();
  const Design d = generate_design(small_config(), lib, "tiny");
  EXPECT_TRUE(d.validate().empty());
  EXPECT_GT(d.cell_count(), 0u);
  EXPECT_GT(d.net_count(), 0u);
  EXPECT_FALSE(d.startpoints.empty());
  EXPECT_FALSE(d.endpoints.empty());
}

TEST(DesignGen, EveryNonEndpointDrivesANet) {
  const auto lib = cell::CellLibrary::make_default();
  const Design d = generate_design(small_config(7), lib, "t");
  std::vector<bool> endpoint(d.cell_count(), false);
  for (InstanceId e : d.endpoints) endpoint[e] = true;
  for (InstanceId v = 0; v < d.cell_count(); ++v) {
    if (endpoint[v])
      EXPECT_EQ(d.driven_net[v], Design::kNoNet);
    else
      EXPECT_NE(d.driven_net[v], Design::kNoNet) << "instance " << v;
  }
}

TEST(DesignGen, FaninComesFromLowerLevels) {
  const auto lib = cell::CellLibrary::make_default();
  const Design d = generate_design(small_config(9), lib, "t");
  for (const DesignNet& net : d.nets) {
    const std::uint32_t driver_level = d.instances[net.driver].level;
    for (InstanceId load : net.loads)
      EXPECT_GT(d.instances[load].level, driver_level);
  }
}

TEST(DesignGen, NetFanoutMatchesLoadCount) {
  const auto lib = cell::CellLibrary::make_default();
  const Design d = generate_design(small_config(11), lib, "t");
  for (const DesignNet& net : d.nets)
    EXPECT_EQ(net.rc.sinks.size(), net.loads.size());
}

TEST(DesignGen, DeterministicForSeed) {
  const auto lib = cell::CellLibrary::make_default();
  const Design a = generate_design(small_config(3), lib, "t");
  const Design b = generate_design(small_config(3), lib, "t");
  ASSERT_EQ(a.cell_count(), b.cell_count());
  ASSERT_EQ(a.net_count(), b.net_count());
  for (std::size_t i = 0; i < a.nets.size(); ++i)
    EXPECT_EQ(a.nets[i].loads, b.nets[i].loads);
}

TEST(DesignGen, StatsCountFlipFlops) {
  const auto lib = cell::CellLibrary::make_default();
  const Design d = generate_design(small_config(13), lib, "t");
  const DesignStats s = compute_design_stats(d, sequential_flags(d, lib));
  EXPECT_EQ(s.cells, d.cell_count());
  EXPECT_EQ(s.nets, d.net_count());
  EXPECT_EQ(s.constrained_paths, d.endpoints.size());
  // Launch + capture FFs.
  EXPECT_GE(s.ffs, d.startpoints.size() + d.endpoints.size());
}

TEST(PaperBenchmarks, AllEighteenPresent) {
  const auto specs = paper_benchmarks();
  EXPECT_EQ(specs.size(), 18u);
  const std::size_t train_count = static_cast<std::size_t>(
      std::count_if(specs.begin(), specs.end(),
                    [](const BenchmarkSpec& s) { return s.training; }));
  EXPECT_EQ(train_count, 11u);
  // Names must match Table II.
  EXPECT_EQ(specs.front().name, "PCI_BRIDGE");
  EXPECT_EQ(specs.back().name, "OPENGFX");
}

TEST(PaperBenchmarks, SizeScalesWithPaperCells) {
  const auto specs = paper_benchmarks(1.0);
  const auto lib = cell::CellLibrary::make_default();
  const Design small = generate_design(specs[0].config, lib, specs[0].name);
  // LEON3MP (index 10) is ~275x larger than PCI_BRIDGE in the paper.
  const Design large = generate_design(specs[10].config, lib, specs[10].name);
  EXPECT_GT(large.cell_count(), 3 * small.cell_count());
}

// ---- STA ----

TEST(Sta, ArrivalsArePositiveAndFinite) {
  const auto lib = cell::CellLibrary::make_default();
  const Design d = generate_design(small_config(17), lib, "t");
  sim::TransientConfig tc;
  tc.steps = 400;
  GoldenWireSource wire(tc);
  const StaResult r = run_sta(d, lib, wire);
  ASSERT_EQ(r.endpoint_arrival.size(), d.endpoints.size());
  for (double a : r.endpoint_arrival) {
    EXPECT_GT(a, 0.0);
    EXPECT_LT(a, 1e-6);  // well under a microsecond
  }
}

TEST(Sta, EndpointArrivalAtLeastMaxFaninStageDelay) {
  // Arrival accumulates along levels: endpoints see at least one gate delay.
  const auto lib = cell::CellLibrary::make_default();
  const Design d = generate_design(small_config(19), lib, "t");
  sim::TransientConfig tc;
  tc.steps = 400;
  GoldenWireSource wire(tc);
  const StaResult r = run_sta(d, lib, wire);
  const double min_gate = 1e-12;
  for (double a : r.endpoint_arrival) EXPECT_GT(a, min_gate);
}

TEST(Sta, WireSecondsTrackedSeparately) {
  const auto lib = cell::CellLibrary::make_default();
  const Design d = generate_design(small_config(23), lib, "t");
  sim::TransientConfig tc;
  tc.steps = 400;
  GoldenWireSource wire(tc);
  const StaResult r = run_sta(d, lib, wire);
  EXPECT_GT(r.wire_seconds, 0.0);
  EXPECT_GE(r.gate_seconds, 0.0);
  EXPECT_EQ(wire.stats().nets_timed, d.net_count());
}

TEST(Sta, DeterministicRepeatRuns) {
  const auto lib = cell::CellLibrary::make_default();
  const Design d = generate_design(small_config(29), lib, "t");
  sim::TransientConfig tc;
  tc.steps = 400;
  GoldenWireSource w1(tc), w2(tc);
  const StaResult r1 = run_sta(d, lib, w1);
  const StaResult r2 = run_sta(d, lib, w2);
  ASSERT_EQ(r1.endpoint_arrival.size(), r2.endpoint_arrival.size());
  for (std::size_t i = 0; i < r1.endpoint_arrival.size(); ++i)
    EXPECT_DOUBLE_EQ(r1.endpoint_arrival[i], r2.endpoint_arrival[i]);
}

// ---- Path counting (Fig. 2a) ----

TEST(PathCount, HandBuiltDiamondNetlist) {
  // start -> {a, b} -> join -> endpoint: 2 paths.
  const auto lib = cell::CellLibrary::make_default();
  Design d;
  d.name = "hand";
  const std::uint32_t buf = static_cast<std::uint32_t>(*lib.find("BUF_X1"));
  const std::uint32_t nand = static_cast<std::uint32_t>(*lib.find("NAND2_X1"));
  const std::uint32_t dff = static_cast<std::uint32_t>(*lib.find("DFF_X1"));
  d.instances = {{dff, 0}, {buf, 1}, {buf, 1}, {nand, 2}, {dff, 3}};
  d.startpoints = {0};
  d.endpoints = {4};
  auto mk_net = [](rcnet::NodeId sinks) {
    rcnet::RcNet rc;
    rc.source = 0;
    rc.ground_cap.assign(sinks + 1, 1e-15);
    for (rcnet::NodeId v = 1; v <= sinks; ++v) {
      rc.resistors.push_back({0, v, 10.0});
      rc.sinks.push_back(v);
    }
    return rc;
  };
  d.nets.push_back({mk_net(2), 0, {1, 2}});
  d.nets.push_back({mk_net(1), 1, {3}});
  d.nets.push_back({mk_net(1), 2, {3}});
  d.nets.push_back({mk_net(1), 3, {4}});
  d.driven_net = {0, 1, 2, 3, Design::kNoNet};
  ASSERT_TRUE(d.validate().empty());
  EXPECT_DOUBLE_EQ(count_netlist_paths(d), 2.0);
}

TEST(PathCount, GrowsMuchFasterThanWirePaths) {
  // The Fig. 2 contrast: netlist paths explode, wire paths stay tiny.
  const auto lib = cell::CellLibrary::make_default();
  DesignGenConfig cfg = small_config(31);
  cfg.levels = 11;
  cfg.cells_per_level = 32;
  const Design d = generate_design(cfg, lib, "t");
  const double netlist_paths = count_netlist_paths(d);
  std::uint64_t max_wire_paths = 0;
  for (const DesignNet& net : d.nets)
    max_wire_paths =
        std::max(max_wire_paths, rcnet::count_simple_paths(net.rc, 10'000));
  EXPECT_GT(netlist_paths, 50.0 * static_cast<double>(max_wire_paths));
}

TEST(PathCount, MonotoneInDepth) {
  const auto lib = cell::CellLibrary::make_default();
  DesignGenConfig shallow = small_config(37);
  shallow.levels = 3;
  DesignGenConfig deep = small_config(37);
  deep.levels = 9;
  EXPECT_LT(count_netlist_paths(generate_design(shallow, lib, "s")),
            count_netlist_paths(generate_design(deep, lib, "d")));
}

}  // namespace
