file(REMOVE_RECURSE
  "CMakeFiles/bench_analytical.dir/bench_analytical.cpp.o"
  "CMakeFiles/bench_analytical.dir/bench_analytical.cpp.o.d"
  "bench_analytical"
  "bench_analytical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analytical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
