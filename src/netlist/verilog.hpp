/// \file verilog.hpp
/// Structural Verilog-subset writer and parser for gate-level designs.
///
/// Together with the SPEF module this forms the standard post-route handoff
/// pair: Verilog carries connectivity (instances and logical nets), SPEF
/// carries each net's parasitics. The subset uses named port connections and
/// one driven net per instance:
///
///   module NAME ();
///     wire n0, n1, ...;
///     INV_X1 u3 (.A(n1), .Y(n3));
///     DFF_X1 u0 (.Q(n0));          // launch FF (timing startpoint)
///     DFF_X1 u9 (.D(n7));          // capture FF (timing endpoint)
///   endmodule
///
/// Net naming: "n<driver instance id>"; instance naming: "u<id>". Parsed
/// designs carry placeholder parasitics until attach_spef() joins a parsed
/// SPEF stream by net name (missing nets get a deterministic star fallback).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "cell/library.hpp"
#include "netlist/design.hpp"

namespace gnntrans::netlist {

/// Writes \p design as a structural Verilog module.
void write_verilog(std::ostream& out, const Design& design,
                   const cell::CellLibrary& library);

/// Convenience: Verilog text of \p design.
[[nodiscard]] std::string to_verilog(const Design& design,
                                     const cell::CellLibrary& library);

/// Parse outcome. The returned design's nets carry *placeholder* single-R
/// parasitics (replace them via attach_spef before timing).
struct VerilogParseResult {
  Design design;
  std::vector<std::string> warnings;
};

/// Parses a Verilog-subset module against \p library (instances with unknown
/// cell types are dropped with a warning). Recomputes levels topologically.
[[nodiscard]] VerilogParseResult parse_verilog(std::istream& in,
                                               const cell::CellLibrary& library);

/// Replaces each design net's parasitics with the SPEF net of the same name.
/// Nets without a SPEF match (or with mismatched sink counts) keep a
/// deterministic star-topology fallback and produce a warning.
void attach_spef(Design& design, const std::vector<rcnet::RcNet>& spef_nets,
                 std::vector<std::string>* warnings = nullptr);

}  // namespace gnntrans::netlist
