#include "core/telemetry/stats_reporter.hpp"

#include <cstdio>
#include <vector>

#include "core/telemetry/log.hpp"
#include "core/telemetry/quality.hpp"
#include "core/telemetry/trace.hpp"

namespace gnntrans::telemetry {

namespace {

/// Bucket-wise difference cur - prev (both from the same metric, so bounds
/// always match; a fresh prev with no observations adopts cur's bounds).
HistogramData histogram_delta(const HistogramData& cur,
                              const HistogramData& prev) {
  if (prev.count() == 0 || prev.bounds() != cur.bounds()) return cur;
  HistogramData delta(cur.bounds());
  std::vector<std::uint64_t> counts(cur.bucket_counts());
  for (std::size_t b = 0; b < counts.size(); ++b)
    counts[b] -= prev.bucket_counts()[b];
  delta.adopt(std::move(counts), cur.count() - prev.count(),
              cur.sum() - prev.sum());
  return delta;
}

}  // namespace

StatsReporter::StatsReporter(StatsReporterConfig config)
    : config_(config) {
  if (config_.interval_seconds <= 0.0) config_.interval_seconds = 10.0;
}

StatsReporter::~StatsReporter() { stop(); }

void StatsReporter::start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  thread_ = std::thread([this] {
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait_for(lock,
                     std::chrono::duration<double>(config_.interval_seconds),
                     [this] { return !running_.load(std::memory_order_acquire); });
      }
      if (!running_.load(std::memory_order_acquire)) return;
      tick();
    }
  });
}

void StatsReporter::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Touch the mutex so the flag flip cannot slip between the waiter's
  // predicate check and its block — without this, stop() could stall for up
  // to one full interval.
  { const std::lock_guard<std::mutex> lock(mutex_); }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void StatsReporter::tick() {
  auto& registry = MetricsRegistry::global();
  const std::uint64_t nets =
      registry.counter("gnntrans_serving_nets_total").value();
  const std::uint64_t fallback =
      registry.counter("gnntrans_serving_fallback_total").value();
  const std::uint64_t failed =
      registry.counter("gnntrans_serving_failed_total").value();
  const std::uint64_t slow =
      registry.counter("gnntrans_serving_slow_nets_total").value();
  const HistogramData latency =
      registry
          .histogram("gnntrans_serving_net_latency_seconds",
                     HistogramData::default_latency_bounds())
          .snapshot();
  const auto now = std::chrono::steady_clock::now();

  std::uint64_t d_nets = nets, d_fallback = fallback, d_failed = failed,
                d_slow = slow;
  double seconds = config_.interval_seconds;
  HistogramData d_latency = latency;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (have_prev_) {
      d_nets = nets - prev_nets_;
      d_fallback = fallback - prev_fallback_;
      d_failed = failed - prev_failed_;
      d_slow = slow - prev_slow_;
      seconds = std::chrono::duration<double>(now - prev_time_).count();
      d_latency = histogram_delta(latency, prev_latency_);
    }
    prev_nets_ = nets;
    prev_fallback_ = fallback;
    prev_failed_ = failed;
    prev_slow_ = slow;
    prev_latency_ = latency;
    prev_time_ = now;
    have_prev_ = true;
  }

  if (d_nets == 0) {
    GNNTRANS_LOG_DEBUG("obs", "serving idle (%llu nets lifetime)",
                       static_cast<unsigned long long>(nets));
  } else {
    const double rate = seconds > 0.0 ? static_cast<double>(d_nets) / seconds
                                      : 0.0;
    const double denominator = static_cast<double>(d_nets);
    const TraceRecorder& recorder = TraceRecorder::global();

    // Quality columns, when shadow scoring has data: residual p99 and the
    // worst feature PSI, so one grep of the interval lines shows accuracy
    // drift next to throughput.
    std::string quality_cols;
    if (QualityMonitor& quality = QualityMonitor::global();
        quality.active() && quality.shadowed_nets() > 0) {
      const QualityState qs = quality.compute_state();
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    ", resid-p99 %.1f%%, psi %.3f (%s)", qs.delay_p99_pct,
                    qs.worst_psi,
                    qs.worst_feature.empty() ? "-" : qs.worst_feature.c_str());
      quality_cols = buf;
    }
    GNNTRANS_LOG_INFO(
        "obs",
        "serving last %.1fs: %llu nets (%.0f nets/s), fallback %.2f%%, "
        "failed %.2f%%, slow %llu, p50 %.1f us, p99 %.1f us, trace %s 1/%zu%s",
        seconds, static_cast<unsigned long long>(d_nets), rate,
        100.0 * static_cast<double>(d_fallback) / denominator,
        100.0 * static_cast<double>(d_failed) / denominator,
        static_cast<unsigned long long>(d_slow),
        d_latency.quantile(0.50) * 1e6, d_latency.quantile(0.99) * 1e6,
        recorder.enabled() ? "on" : "off", recorder.effective_sample_every(),
        quality_cols.c_str());
  }
  reports_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace gnntrans::telemetry
