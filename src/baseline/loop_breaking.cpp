#include "baseline/loop_breaking.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

namespace gnntrans::baseline {

namespace {

/// Union-find over node ids.
class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

rcnet::RcNet break_loops(const rcnet::RcNet& net) {
  if (net.is_tree()) return net;

  // Kruskal on resistance: keep low-R edges, drop high-R loop closers.
  std::vector<std::size_t> order(net.resistors.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return net.resistors[a].ohms < net.resistors[b].ohms;
  });

  rcnet::RcNet out = net;
  out.resistors.clear();
  DisjointSet ds(net.node_count());
  for (std::size_t idx : order)
    if (ds.unite(net.resistors[idx].a, net.resistors[idx].b))
      out.resistors.push_back(net.resistors[idx]);
  return out;
}

}  // namespace gnntrans::baseline
