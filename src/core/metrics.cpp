#include "core/metrics.hpp"

#include <cassert>
#include <cmath>

namespace gnntrans::core {

double r2_score(std::span<const double> prediction, std::span<const double> truth) {
  assert(prediction.size() == truth.size() && !truth.empty());
  double mean = 0.0;
  for (double v : truth) mean += v;
  mean /= static_cast<double>(truth.size());

  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - prediction[i]) * (truth[i] - prediction[i]);
    ss_tot += (truth[i] - mean) * (truth[i] - mean);
  }
  if (ss_tot <= 0.0) return ss_res <= 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double max_abs_error(std::span<const double> prediction,
                     std::span<const double> truth) {
  assert(prediction.size() == truth.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i)
    worst = std::max(worst, std::abs(prediction[i] - truth[i]));
  return worst;
}

double mean_abs_error(std::span<const double> prediction,
                      std::span<const double> truth) {
  assert(prediction.size() == truth.size() && !truth.empty());
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i)
    acc += std::abs(prediction[i] - truth[i]);
  return acc / static_cast<double>(truth.size());
}

}  // namespace gnntrans::core
