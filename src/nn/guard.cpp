#include "nn/guard.hpp"

#include <atomic>
#include <cmath>

namespace gnntrans::nn {

namespace {

std::atomic<bool> g_finite_guard{true};

}  // namespace

NonFiniteActivationError::NonFiniteActivationError(std::string stage,
                                                   std::size_t row,
                                                   std::size_t col)
    : std::runtime_error("non-finite activation at layer boundary '" + stage +
                         "' [" + std::to_string(row) + "," +
                         std::to_string(col) + "]"),
      stage_(std::move(stage)) {}

void set_finite_guard(bool enabled) noexcept {
  g_finite_guard.store(enabled, std::memory_order_relaxed);
}

bool finite_guard_enabled() noexcept {
  return g_finite_guard.load(std::memory_order_relaxed);
}

void guard_finite(const tensor::Tensor& t, const char* stage) {
  if (!finite_guard_enabled() || !t.defined()) return;
  const auto values = t.values();
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!std::isfinite(values[i])) [[unlikely]]
      throw NonFiniteActivationError(stage, i / t.cols(), i % t.cols());
  }
}

}  // namespace gnntrans::nn
