/// \file thread_pool.hpp
/// A reusable, resizable worker pool shared by training and serving.
///
/// Extracted from the data-parallel trainer so that batched inference
/// (WireTimingEstimator::estimate_batch) and training fan-out use one
/// primitive instead of spawning fresh std::threads per mini-batch. The pool
/// exposes an indexed parallel_for whose callback receives a stable worker id
/// in [0, size()), which callers use to address per-worker resources (model
/// replicas, scratch arenas) without locking.
///
/// resize(n) grows or shrinks the pool between jobs: it waits for any
/// in-flight parallel_for to drain, then spawns or joins exactly the workers
/// needed to reach n. Worker ids stay dense ([0, size()) before and after),
/// so per-worker resource vectors can be resized in lockstep — this is what
/// core::PoolAutoscaler drives between serving batches.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gnntrans::core {

/// Worker pool. Threads are started in the constructor (or by resize) and
/// parked on a condition variable between jobs, so per-call dispatch cost is
/// two notifications rather than thread creation.
class ThreadPool {
 public:
  /// Creates a pool of \p threads workers. With threads <= 1 no worker
  /// threads are started and parallel_for runs inline on the caller.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count (1 for an inline pool).
  [[nodiscard]] std::size_t size() const noexcept {
    return workers_.empty() ? 1 : workers_.size();
  }

  /// Changes the worker count to \p threads (<= 1 means inline, like the
  /// constructor). Blocks until any in-flight parallel_for finishes, then
  /// joins the workers above the new count or spawns the missing ones —
  /// existing workers keep their ids, so callers can grow or trim per-worker
  /// resource vectors in lockstep. Do not call from inside a task.
  void resize(std::size_t threads);

  using Task = std::function<void(std::size_t index, std::size_t worker)>;

  /// Runs task(i, worker) for every i in [0, n) and blocks until all calls
  /// complete. Indices are claimed dynamically (good load balance for uneven
  /// per-item cost). If a call throws, the first exception is rethrown here
  /// and remaining unclaimed indices are skipped. Safe to call from multiple
  /// threads (calls serialize); do not call from inside a task.
  void parallel_for(std::size_t n, const Task& task);

  /// std::thread::hardware_concurrency with a floor of 1.
  [[nodiscard]] static std::size_t hardware_threads() noexcept;

 private:
  /// \p seen is the job generation current when the worker was spawned, so a
  /// worker added by resize never mistakes an already-finished job for new
  /// work (or skips one dispatched right after it was spawned).
  void worker_loop(std::size_t worker, std::uint64_t seen);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< wakes workers for a new job
  std::condition_variable done_cv_;  ///< wakes callers on completion / free pool
  const Task* task_ = nullptr;
  std::size_t task_count_ = 0;
  std::atomic<std::size_t> next_{0};  ///< next unclaimed index
  std::size_t active_ = 0;            ///< workers still draining current job
  std::uint64_t generation_ = 0;      ///< bumped per job; workers wait on it
  std::size_t limit_ = 0;             ///< workers with id >= limit_ exit (resize)
  bool busy_ = false;                 ///< a parallel_for is in flight
  bool stop_ = false;
  std::exception_ptr error_;
};

}  // namespace gnntrans::core
