file(REMOVE_RECURSE
  "CMakeFiles/gnntrans_cell.dir/liberty.cpp.o"
  "CMakeFiles/gnntrans_cell.dir/liberty.cpp.o.d"
  "CMakeFiles/gnntrans_cell.dir/library.cpp.o"
  "CMakeFiles/gnntrans_cell.dir/library.cpp.o.d"
  "CMakeFiles/gnntrans_cell.dir/nldm.cpp.o"
  "CMakeFiles/gnntrans_cell.dir/nldm.cpp.o.d"
  "libgnntrans_cell.a"
  "libgnntrans_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnntrans_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
