#include "core/thread_pool.hpp"

#include <algorithm>

namespace gnntrans::core {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads <= 1) return;
  limit_ = threads;
  workers_.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w)
    workers_.emplace_back([this, w] { worker_loop(w, 0); });
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::resize(std::size_t threads) {
  const std::size_t target = threads <= 1 ? 0 : threads;
  std::vector<std::thread> retired;
  {
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] { return !busy_; });  // drain any in-flight job
    if (target == workers_.size()) return;
    limit_ = target;
    if (target < workers_.size()) {
      for (std::size_t w = target; w < workers_.size(); ++w)
        retired.push_back(std::move(workers_[w]));
      workers_.resize(target);
    } else {
      workers_.reserve(target);
      // Capture the current generation: the pool is idle here, so a fresh
      // worker must treat this generation as already seen and only wake for
      // the next job.
      for (std::size_t w = workers_.size(); w < target; ++w)
        workers_.emplace_back(
            [this, w, gen = generation_] { worker_loop(w, gen); });
    }
  }
  work_cv_.notify_all();  // wake retired workers so they can observe limit_
  for (std::thread& t : retired) t.join();
}

std::size_t ThreadPool::hardware_threads() noexcept {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::parallel_for(std::size_t n, const Task& task) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) task(i, 0);
    return;
  }

  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [&] { return !busy_; });  // serialize concurrent callers
  busy_ = true;
  task_ = &task;
  task_count_ = n;
  next_.store(0, std::memory_order_relaxed);
  active_ = workers_.size();
  error_ = nullptr;
  ++generation_;
  work_cv_.notify_all();

  done_cv_.wait(lock, [&] { return active_ == 0; });
  task_ = nullptr;
  busy_ = false;
  const std::exception_ptr error = error_;
  error_ = nullptr;
  lock.unlock();
  done_cv_.notify_all();  // admit the next waiting caller
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop(std::size_t worker, std::uint64_t seen) {
  std::unique_lock lock(mutex_);
  for (;;) {
    work_cv_.wait(
        lock, [&] { return stop_ || worker >= limit_ || generation_ != seen; });
    if (stop_ || worker >= limit_) return;
    seen = generation_;
    const Task* task = task_;
    const std::size_t count = task_count_;
    lock.unlock();

    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      try {
        (*task)(i, worker);
      } catch (...) {
        std::scoped_lock error_lock(mutex_);
        if (!error_) error_ = std::current_exception();
        // Abandon unclaimed indices; in-flight calls on other workers finish.
        next_.store(count, std::memory_order_relaxed);
      }
    }

    lock.lock();
    if (--active_ == 0) done_cv_.notify_all();
  }
}

}  // namespace gnntrans::core
