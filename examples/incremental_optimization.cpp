// Incremental timing optimization — the paper's motivating use case.
//
// A routed design is timed once with the golden (sign-off class) wire timer.
// The optimization loop then upsizes drivers of the most critical endpoints,
// re-evaluating timing after every move. Doing each re-evaluation with the
// golden timer would be prohibitively slow at scale; the trained GNNTrans
// estimator answers the same queries in a fraction of the time. The final
// result is verified against the golden timer.
//
//   $ ./examples/incremental_optimization
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "core/estimator.hpp"
#include "core/metrics.hpp"
#include "features/dataset.hpp"
#include "netlist/generate.hpp"
#include "netlist/incremental.hpp"
#include "netlist/report.hpp"
#include "netlist/sta.hpp"

using namespace gnntrans;

namespace {

double worst_arrival(const netlist::StaResult& sta) {
  double worst = 0.0;
  for (double a : sta.endpoint_arrival) worst = std::max(worst, a);
  return worst;
}

/// Picks an upsizable instance on the current worst path and swaps it to
/// double drive through the incremental engine. Returns true when a move
/// was made; reports how many instances the cone re-evaluation touched.
bool upsize_on_worst_path(netlist::IncrementalSta& sta,
                          const cell::CellLibrary& library) {
  const netlist::TimingPath path =
      netlist::worst_paths(sta.design(), sta.result(), 1).front();
  for (const netlist::PathStage& stage : path.stages) {
    const cell::Cell& current =
        library.at(sta.design().instances[stage.instance].cell_index);
    for (std::size_t i = 0; i < library.size(); ++i) {
      const cell::Cell& candidate = library.at(i);
      if (candidate.function == current.function &&
          candidate.drive_strength == current.drive_strength * 2) {
        const std::size_t touched =
            sta.swap_cell(stage.instance, static_cast<std::uint32_t>(i));
        std::printf("  upsized u%u %s -> %s (cone: %zu of %zu instances)\n",
                    stage.instance, current.name.c_str(), candidate.name.c_str(),
                    touched, sta.design().cell_count());
        return true;
      }
    }
  }
  return false;
}

}  // namespace

int main() {
  const cell::CellLibrary library = cell::CellLibrary::make_default();

  // A routed design to optimize.
  netlist::DesignGenConfig dcfg;
  dcfg.startpoints = 12;
  dcfg.levels = 6;
  dcfg.cells_per_level = 18;
  dcfg.seed = 99;
  netlist::Design design = netlist::generate_design(dcfg, library, "opt_core");
  std::printf("Design '%s': %zu cells, %zu nets, %zu endpoints.\n\n",
              design.name.c_str(), design.cell_count(), design.net_count(),
              design.endpoints.size());

  // Sign-off baseline timing + training data from the same run.
  sim::TransientConfig tc;
  tc.steps = 600;
  netlist::GoldenWireSource golden(tc);
  const auto t0 = std::chrono::steady_clock::now();
  const netlist::StaResult signoff = netlist::run_sta(design, library, golden);
  const double golden_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::printf("Sign-off STA: worst arrival %.1f ps (%.2f s, wire %.2f s)\n",
              worst_arrival(signoff) * 1e12, golden_seconds,
              signoff.wire_seconds);

  // Train the estimator on this design's nets under true propagated slews.
  sim::GoldenTimer timer(tc);
  const auto records =
      features::records_from_design(design, library, timer, &signoff.slew);
  core::WireTimingEstimator::Options opt;
  opt.model.hidden_dim = 16;
  opt.model.gnn_layers = 4;
  opt.model.transformer_layers = 2;
  opt.train.epochs = 25;
  std::printf("Training estimator on %zu nets...\n\n", records.size());
  const auto estimator = core::WireTimingEstimator::train(records, opt);

  // Incremental optimization loop: estimator wire timing + cone re-analysis.
  std::printf("Optimization loop (estimator + incremental STA):\n");
  const auto t1 = std::chrono::steady_clock::now();
  core::EstimatorWireSource source(estimator, design, library);
  netlist::IncrementalSta inc(design, library, source);
  for (int iteration = 0; iteration < 6; ++iteration) {
    std::printf("  iter %d: estimated worst arrival %.1f ps\n", iteration,
                inc.worst_arrival() * 1e12);
    if (!upsize_on_worst_path(inc, library)) {
      std::printf("  no further upsizing possible.\n");
      break;
    }
  }
  const double estimator_worst = inc.worst_arrival();
  const double loop_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1).count();
  std::printf("  total cone re-evaluations: %zu instances\n",
              inc.total_reevaluations());

  // The final worst path, sign-off style.
  const netlist::TimingPath worst =
      netlist::worst_paths(inc.design(), inc.result(), 1).front();
  std::printf("\nFinal worst path (estimated):\n%s",
              netlist::format_path(inc.design(), library, worst).c_str());

  // Final sign-off verification of the optimized design.
  netlist::GoldenWireSource verify(tc);
  const netlist::StaResult final_sta =
      netlist::run_sta(inc.design(), library, verify);
  std::printf("\nVerification: golden worst arrival %.1f ps "
              "(was %.1f ps before optimization)\n",
              worst_arrival(final_sta) * 1e12, worst_arrival(signoff) * 1e12);
  std::printf("Estimator-vs-golden on final design: %.2f ps apart.\n",
              std::abs(worst_arrival(final_sta) - estimator_worst) * 1e12);
  std::printf("Optimization loop wall time: %.2f s (vs %.2f s for ONE golden "
              "STA pass).\n",
              loop_seconds, golden_seconds);
  return 0;
}
