#include "rcnet/paths.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace gnntrans::rcnet {

double WirePath::path_resistance(const RcNet& net) const {
  double acc = 0.0;
  for (std::uint32_t idx : resistor_indices) acc += net.resistors[idx].ohms;
  return acc;
}

ShortestPathTree shortest_path_tree(const RcNet& net) {
  const Adjacency adj = build_adjacency(net);
  const std::size_t n = net.node_count();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  ShortestPathTree t;
  t.parent.assign(n, ShortestPathTree::kNoParent);
  t.parent_resistor.assign(n, 0);
  t.distance.assign(n, kInf);
  t.distance[net.source] = 0.0;
  t.parent[net.source] = net.source;
  t.order.reserve(n);

  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.emplace(0.0, net.source);
  std::vector<bool> settled(n, false);

  while (!heap.empty()) {
    const auto [dist, v] = heap.top();
    heap.pop();
    if (settled[v]) continue;  // stale entry
    settled[v] = true;
    t.order.push_back(v);
    for (const Neighbor& nb : adj[v]) {
      const double cand = dist + net.resistors[nb.resistor_index].ohms;
      if (cand < t.distance[nb.node]) {
        t.distance[nb.node] = cand;
        t.parent[nb.node] = v;
        t.parent_resistor[nb.node] = nb.resistor_index;
        heap.emplace(cand, nb.node);
      }
    }
  }
  return t;
}

std::vector<WirePath> enumerate_paths(const RcNet& net) {
  const ShortestPathTree tree = shortest_path_tree(net);
  constexpr NodeId kNone = ShortestPathTree::kNoParent;

  std::vector<WirePath> paths;
  paths.reserve(net.sinks.size());
  for (NodeId sink : net.sinks) {
    WirePath p;
    p.sink = sink;
    // Walk parents from sink back to source, then reverse.
    for (NodeId v = sink; v != net.source; v = tree.parent[v]) {
      if (tree.parent[v] == kNone) break;  // unreachable (invalid net)
      p.nodes.push_back(v);
      p.resistor_indices.push_back(tree.parent_resistor[v]);
    }
    p.nodes.push_back(net.source);
    std::reverse(p.nodes.begin(), p.nodes.end());
    std::reverse(p.resistor_indices.begin(), p.resistor_indices.end());
    paths.push_back(std::move(p));
  }
  return paths;
}

namespace {

std::uint64_t dfs_count(const RcNet& net, const Adjacency& adj, NodeId v,
                        NodeId sink, std::vector<bool>& on_path,
                        std::uint64_t cap, std::uint64_t count) {
  if (v == sink) return count + 1;
  if (count >= cap) return count;
  on_path[v] = true;
  for (const Neighbor& nb : adj[v]) {
    if (!on_path[nb.node]) {
      count = dfs_count(net, adj, nb.node, sink, on_path, cap, count);
      if (count >= cap) break;
    }
  }
  on_path[v] = false;
  return count;
}

}  // namespace

std::uint64_t count_simple_paths(const RcNet& net, std::uint64_t cap) {
  const Adjacency adj = build_adjacency(net);
  std::uint64_t total = 0;
  std::vector<bool> on_path(net.node_count(), false);
  for (NodeId sink : net.sinks) {
    total += dfs_count(net, adj, net.source, sink, on_path, cap, 0);
    if (total >= cap) return cap;
  }
  return total;
}

}  // namespace gnntrans::rcnet
