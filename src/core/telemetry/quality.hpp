/// \file quality.hpp
/// Model-quality observability: is the GNN still trustworthy on live traffic?
///
/// The rest of the telemetry stack watches *speed and health* (latency
/// histograms, degradation counters, the flight recorder). This subsystem
/// watches *accuracy* — the failure mode none of those can see: a model that
/// keeps answering quickly and successfully while circuit traffic drifts away
/// from its training distribution and its predictions silently rot.
///
/// Three mechanisms, all fed from the serving path:
///
/// 1. **Shadow scoring.** A deterministic, seeded sampler (the FaultInjector
///    pure-hash idiom: a decision is a pure function of (seed, net name), so
///    the sampled-net set is identical for any thread count or batch split)
///    selects a fraction of served nets. Each selected net is re-timed inline
///    with the analytic Elmore/D2M baseline, and per-sink model-vs-analytic
///    residuals — delay and slew, split by tree/non-tree topology — feed
///    MetricsRegistry histograms plus streaming log-bucket quantile sketches.
///    The shadow pass self-times, and an overhead controller (same shape as
///    the adaptive trace sampler) lowers the *effective* rate between batches
///    whenever the measured cost exceeds its budget.
///
/// 2. **Feature drift.** Training computes one LogSketch per input feature
///    (the baseline profile, serialized into the model checkpoint); serving
///    maintains live sketches over the same featurization for shadowed nets.
///    Per-feature Population Stability Index between baseline and live
///    distributions is exported as gnntrans_quality_feature_psi_* gauges.
///
/// 3. **Accuracy-aware readiness.** degraded() reports when any feature's PSI
///    or the shadow residual p99 crosses its configured bound; the obs
///    server's /readyz consults it, and /quality serves the full state as
///    JSON. Drift and residual outliers are pinned into the flight recorder.
///
/// Everything here is distribution plumbing over plain counts — no model,
/// feature, or net types — so the telemetry library stays at the bottom of
/// the stack; the serving layer (core::WireTimingEstimator) owns the actual
/// re-timing and featurization.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace gnntrans::telemetry {

/// Streaming distribution sketch over sign-aware log2 buckets. The layout is
/// fixed and global — one bucket per power of two from 2^kMinExp to 2^kMaxExp
/// for each sign, plus a zero bucket — so any two sketches are comparable
/// (PSI) and mergeable without negotiating bounds. Buckets are ordered most
/// negative -> zero -> most positive, which makes quantile() a cumulative
/// walk. Single writer; guard externally for concurrent observe().
class LogSketch {
 public:
  static constexpr int kMinExp = -60;  ///< |v| < 2^-60 counts as zero
  static constexpr int kMaxExp = 20;   ///< |v| >= 2^20 clamps to the last bucket
  static constexpr std::size_t kMagnitudeBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp + 1);
  static constexpr std::size_t kBucketCount = 2 * kMagnitudeBuckets + 1;

  /// Bucket index of \p value in the ordered layout. NaN lands in the zero
  /// bucket (it must land somewhere deterministic; NaNs are guarded upstream).
  [[nodiscard]] static std::size_t bucket_of(double value) noexcept;

  /// Lower/upper value bounds of bucket \p index (signed; the zero bucket is
  /// [-2^kMinExp, 2^kMinExp)).
  [[nodiscard]] static double bucket_lower(std::size_t index) noexcept;
  [[nodiscard]] static double bucket_upper(std::size_t index) noexcept;

  void observe(double value) noexcept;
  void merge(const LogSketch& other) noexcept;
  void reset() noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] const std::array<std::uint64_t, kBucketCount>& buckets()
      const noexcept {
    return counts_;
  }

  /// Quantile estimate by linear interpolation inside the covering bucket
  /// (geometric bounds). q clamped to [0, 1]; 0.0 on an empty sketch.
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Raw little-endian (count + buckets) block, stable across platforms.
  void save(std::ostream& out) const;
  /// Throws std::runtime_error on a truncated stream.
  void load(std::istream& in);

 private:
  std::array<std::uint64_t, kBucketCount> counts_{};
  std::uint64_t count_ = 0;
};

/// Population Stability Index between two sketches over the shared layout:
///   sum_i (q_i - p_i) * ln(q_i / p_i),
/// with bucket fractions floored at \p epsilon so empty buckets contribute a
/// bounded penalty instead of infinity. 0 for identical distributions; the
/// usual monitoring reading is < 0.1 stable, 0.1-0.25 shifting, > 0.25
/// drifted. Returns 0 when either sketch is empty (no evidence, no alarm).
[[nodiscard]] double population_stability_index(const LogSketch& baseline,
                                                const LogSketch& live,
                                                double epsilon = 1e-4);

/// Per-input-feature baseline profile, computed by the trainer over the
/// training records and serialized into the model checkpoint. Feature names
/// must be metric-name-safe ([a-z0-9_]) because they become gauge suffixes.
struct FeatureBaseline {
  std::vector<std::string> names;     ///< one per feature column
  std::vector<LogSketch> sketches;    ///< aligned with names

  [[nodiscard]] bool empty() const noexcept { return sketches.empty(); }
  [[nodiscard]] std::size_t feature_count() const noexcept {
    return sketches.size();
  }

  void observe(std::size_t feature, double value);

  /// Versioned block: magic + per-feature (name, sketch).
  void save(std::ostream& out) const;
  /// Throws std::runtime_error on a malformed block.
  void load(std::istream& in);
};

/// Knobs for the quality monitor. configure() resets live state.
struct QualityConfig {
  /// Fraction of served nets shadow-scored (0 disables shadowing).
  double shadow_rate = 0.05;
  std::uint64_t shadow_seed = 1;
  /// Shadow-cost budget as a percent of serving wall time; when the measured
  /// (EWMA) cost exceeds it, the effective rate backs off between batches and
  /// recovers once the cost fits again. 0 disables the controller, pinning
  /// the effective rate to shadow_rate (fully deterministic sampling).
  double overhead_budget_pct = 0.0;
  /// A feature whose baseline-vs-live PSI exceeds this flips readiness.
  double psi_alert = 0.25;
  /// Shadow delay-residual p99 (relative, percent) bound for readiness.
  double residual_alert_pct = 50.0;
  /// Sketch observations required before PSI / residual bounds are judged
  /// (early traffic is too thin to call a drift).
  std::uint64_t min_samples = 256;
};

/// One feature's drift reading.
struct FeatureDrift {
  std::string name;
  double psi = 0.0;
  std::uint64_t live_count = 0;
};

/// Point-in-time quality state (compute_state()).
struct QualityState {
  std::uint64_t shadowed_nets = 0;
  std::uint64_t shadowed_sinks = 0;
  double effective_rate = 0.0;
  double shadow_overhead_pct = 0.0;  ///< EWMA of shadow cost / serving wall
  // Relative residual quantiles, percent of the analytic reference.
  double delay_p50_pct = 0.0;
  double delay_p99_pct = 0.0;
  double slew_p50_pct = 0.0;
  double slew_p99_pct = 0.0;
  double worst_psi = 0.0;
  std::string worst_feature;
  std::vector<FeatureDrift> features;  ///< empty without a baseline
  bool degraded = false;
  std::string degraded_reason;  ///< empty when healthy
};

/// Process-wide model-quality monitor. Sampling decisions are lock-free pure
/// hashes; residual/feature recording takes a mutex (the shadow path already
/// paid an analytic re-time, so the lock is noise); compute_state() merges and
/// publishes gauges and is meant for scrape/report cadence, not per net.
class QualityMonitor {
 public:
  QualityMonitor() = default;
  QualityMonitor(const QualityMonitor&) = delete;
  QualityMonitor& operator=(const QualityMonitor&) = delete;

  [[nodiscard]] static QualityMonitor& global();

  /// Arms the monitor (shadow_rate > 0) and resets live sketches, residuals,
  /// counters, and the overhead controller. Keeps any installed baseline.
  void configure(const QualityConfig& config);
  [[nodiscard]] QualityConfig config() const;

  /// True when shadowing can fire at all (configured rate > 0).
  [[nodiscard]] bool active() const noexcept {
    return active_.load(std::memory_order_acquire);
  }

  /// Deterministic sampling decision for \p net_name at the current
  /// *effective* rate: a pure hash of (seed, name) against a threshold, so
  /// the same (seed, rate) selects the same nets for any thread count, call
  /// order, or batch split. False when inactive.
  [[nodiscard]] bool should_shadow(std::string_view net_name) const noexcept;

  /// Effective sampling rate currently applied (== configured rate until the
  /// overhead controller backs off).
  [[nodiscard]] double effective_rate() const noexcept;

  /// Installs the training-time feature profile (replacing any previous one)
  /// and clears live feature sketches so PSI compares like with like.
  void install_baseline(FeatureBaseline baseline);
  [[nodiscard]] bool has_baseline() const;

  /// Records one shadowed net's worth of feature rows: \p rows x \p cols
  /// row-major values observed into live sketches [base_index, base_index +
  /// cols). One lock per call, not per value.
  void observe_features(const float* values, std::size_t rows,
                        std::size_t cols, std::size_t base_index);

  /// Records one shadowed sink's model-vs-analytic residuals (seconds).
  /// Relative residuals are |model - ref| / max(|ref|, 1e-15), as a percent.
  void record_residual(bool non_tree, double delay_model, double delay_ref,
                       double slew_model, double slew_ref);

  /// Tallies one shadowed net (nets, not sinks — the sampler's unit).
  void count_shadowed_net() noexcept;

  /// Overhead controller, once per batch from the serving path: \p
  /// shadow_seconds self-timed shadow cost inside a batch that took \p
  /// batch_seconds. Updates the cost EWMA and moves the effective rate —
  /// between batches only, so within-batch sampling stays deterministic.
  ///
  /// The first kShadowCostWarmupBatches observations after configure() are
  /// discarded: a fresh process's early shadow passes pay one-time setup
  /// (residual-sketch first touch, feature-extraction allocations, cold
  /// instruction caches), and seeding the EWMA with that inflated cost used
  /// to throttle the shadow rate to ~configured/64 before any steady-state
  /// evidence existed — the same probe-at-first-call bug the trace sampler's
  /// budget controller had.
  void observe_shadow_cost(double shadow_seconds, double batch_seconds) noexcept;

  /// Cost observations ignored after configure() before the EWMA/controller
  /// engage (see observe_shadow_cost).
  static constexpr std::uint64_t kShadowCostWarmupBatches = 8;

  /// Merges sketches, computes per-feature PSI + residual quantiles, updates
  /// the gnntrans_quality_* gauges, pins new drift crossings into the flight
  /// recorder, and returns the state.
  [[nodiscard]] QualityState compute_state();

  /// Readiness hook: true when the latest computed state (refreshed here)
  /// crosses the PSI or residual bounds; \p reason (optional) explains.
  [[nodiscard]] bool degraded(std::string* reason);

  /// compute_state() rendered as one JSON document (the /quality endpoint).
  [[nodiscard]] std::string state_json();

  /// Lifetime shadowed-net count (for tests and stats lines).
  [[nodiscard]] std::uint64_t shadowed_nets() const noexcept {
    return shadowed_nets_.load(std::memory_order_relaxed);
  }

 private:
  void set_effective_rate(double rate) noexcept;

  mutable std::mutex mutex_;  ///< guards config_, baseline_, sketches, flags
  QualityConfig config_;
  FeatureBaseline baseline_;
  std::vector<LogSketch> live_features_;
  // Residual sketches of relative percent error, by (quantity, topology).
  LogSketch delay_resid_tree_, delay_resid_nontree_;
  LogSketch slew_resid_tree_, slew_resid_nontree_;
  std::vector<std::uint8_t> psi_alerted_;  ///< per-feature "already pinned"

  std::atomic<bool> active_{false};
  std::atomic<std::uint64_t> shadow_threshold_{0};  ///< effective rate as u64
  std::atomic<std::uint64_t> shadow_seed_{1};
  std::atomic<std::uint64_t> shadowed_nets_{0};
  std::atomic<std::uint64_t> shadowed_sinks_{0};
  std::atomic<double> overhead_ewma_pct_{0.0};
  std::atomic<std::uint64_t> cost_batches_{0};  ///< observe_shadow_cost calls
};

}  // namespace gnntrans::telemetry
