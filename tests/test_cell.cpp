// Tests for NLDM tables and the synthetic cell library.
#include <gtest/gtest.h>

#include <cmath>

#include "cell/library.hpp"
#include "cell/nldm.hpp"

namespace {

using namespace gnntrans::cell;

NldmTable linear_table() {
  // f(s, c) = 2 s + 3 c : bilinear interpolation must be exact.
  return NldmTable::characterize({1.0, 2.0, 4.0, 8.0}, {10.0, 20.0, 40.0},
                                 [](double s, double c) { return 2 * s + 3 * c; });
}

TEST(Nldm, ExactAtGridPoints) {
  const NldmTable t = linear_table();
  EXPECT_DOUBLE_EQ(t.lookup(2.0, 20.0), 64.0);
  EXPECT_DOUBLE_EQ(t.lookup(8.0, 40.0), 136.0);
  EXPECT_DOUBLE_EQ(t.lookup(1.0, 10.0), 32.0);
}

TEST(Nldm, BilinearIsExactForBilinearFunction) {
  const NldmTable t = linear_table();
  EXPECT_NEAR(t.lookup(3.0, 15.0), 2 * 3.0 + 3 * 15.0, 1e-12);
  EXPECT_NEAR(t.lookup(5.5, 33.0), 2 * 5.5 + 3 * 33.0, 1e-12);
}

TEST(Nldm, ExtrapolatesLinearlyOutsideGrid) {
  const NldmTable t = linear_table();
  // Beyond both axes the border cell's plane continues.
  EXPECT_NEAR(t.lookup(16.0, 80.0), 2 * 16.0 + 3 * 80.0, 1e-12);
  EXPECT_NEAR(t.lookup(0.5, 5.0), 2 * 0.5 + 3 * 5.0, 1e-12);
}

TEST(Nldm, RejectsBadAxes) {
  EXPECT_THROW(NldmTable::characterize({1.0}, {1.0, 2.0},
                                       [](double, double) { return 0.0; }),
               std::invalid_argument);
  EXPECT_THROW(NldmTable::characterize({2.0, 1.0}, {1.0, 2.0},
                                       [](double, double) { return 0.0; }),
               std::invalid_argument);
}

TEST(Library, DefaultLibraryIsPopulated) {
  const CellLibrary lib = CellLibrary::make_default();
  EXPECT_GT(lib.size(), 20u);
  EXPECT_FALSE(lib.combinational().empty());
  EXPECT_FALSE(lib.sequential().empty());
  EXPECT_EQ(lib.combinational().size() + lib.sequential().size(), lib.size());
}

TEST(Library, FindLocatesCellsByName) {
  const CellLibrary lib = CellLibrary::make_default();
  const auto idx = lib.find("INV_X1");
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(lib.at(*idx).function, CellFunction::kInv);
  EXPECT_EQ(lib.at(*idx).drive_strength, 1u);
  EXPECT_FALSE(lib.find("NONEXISTENT_X9").has_value());
}

TEST(Library, StrongerDriveMeansLowerResistance) {
  const CellLibrary lib = CellLibrary::make_default();
  const Cell& x1 = lib.at(*lib.find("INV_X1"));
  const Cell& x4 = lib.at(*lib.find("INV_X4"));
  EXPECT_GT(x1.drive_resistance, x4.drive_resistance);
  EXPECT_LT(x1.input_cap, x4.input_cap);
}

TEST(Library, DelayIncreasesWithLoadAndSlew) {
  const CellLibrary lib = CellLibrary::make_default();
  for (std::size_t i = 0; i < lib.size(); ++i) {
    const Cell& c = lib.at(i);
    const double d_small = c.arc.delay.lookup(10e-12, 1e-15);
    const double d_big_load = c.arc.delay.lookup(10e-12, 30e-15);
    const double d_slow_in = c.arc.delay.lookup(200e-12, 1e-15);
    EXPECT_LT(d_small, d_big_load) << c.name;
    EXPECT_LT(d_small, d_slow_in) << c.name;
    EXPECT_GT(d_small, 0.0) << c.name;
  }
}

TEST(Library, OutputSlewIncreasesWithLoad) {
  const CellLibrary lib = CellLibrary::make_default();
  for (std::size_t i = 0; i < lib.size(); ++i) {
    const Cell& c = lib.at(i);
    EXPECT_LT(c.arc.output_slew.lookup(20e-12, 1e-15),
              c.arc.output_slew.lookup(20e-12, 40e-15))
        << c.name;
  }
}

TEST(Library, StrongerDriveIsFasterAtSameLoad) {
  const CellLibrary lib = CellLibrary::make_default();
  const Cell& x1 = lib.at(*lib.find("BUF_X1"));
  const Cell& x8 = lib.at(*lib.find("BUF_X8"));
  EXPECT_GT(x1.arc.delay.lookup(20e-12, 20e-15),
            x8.arc.delay.lookup(20e-12, 20e-15));
}

TEST(Library, FunctionMetadataConsistent) {
  EXPECT_TRUE(is_sequential(CellFunction::kDff));
  EXPECT_FALSE(is_sequential(CellFunction::kNand2));
  EXPECT_EQ(input_count(CellFunction::kInv), 1u);
  EXPECT_EQ(input_count(CellFunction::kNand2), 2u);
  EXPECT_EQ(input_count(CellFunction::kMux2), 3u);
  EXPECT_STREQ(to_string(CellFunction::kAoi21), "AOI21");
}

TEST(Library, DeterministicConstruction) {
  const CellLibrary a = CellLibrary::make_default();
  const CellLibrary b = CellLibrary::make_default();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.at(i).name, b.at(i).name);
    EXPECT_DOUBLE_EQ(a.at(i).drive_resistance, b.at(i).drive_resistance);
    EXPECT_DOUBLE_EQ(a.at(i).arc.delay.lookup(20e-12, 5e-15),
                     b.at(i).arc.delay.lookup(20e-12, 5e-15));
  }
}

}  // namespace
