file(REMOVE_RECURSE
  "libgnntrans_cell.a"
)
