/// \file generate.hpp
/// Synthetic RC-net topology generator.
///
/// Substitutes for StarRC parasitic extraction of routed designs (see
/// DESIGN.md Sec. 1). Nets are grown as route-like trees (a trunk with
/// branches), optionally made non-tree by adding loop resistors (redundant
/// routing), and optionally coupled to aggressor nets through coupling caps.
/// Distribution defaults are tuned so that per-net cap counts and path counts
/// match the paper's Fig. 2(b) statistics (paths mostly 10-30, max ~49).
#pragma once

#include <cstdint>
#include <random>
#include <string>

#include "rcnet/rcnet.hpp"

namespace gnntrans::rcnet {

/// Knobs controlling net shape and electrical values (SI units).
struct NetGenConfig {
  // Topology.
  std::uint32_t min_nodes = 8;
  std::uint32_t max_nodes = 80;
  std::uint32_t min_sinks = 1;
  std::uint32_t max_sinks = 12;
  /// Probability of extending the current branch tip instead of branching
  /// from a random node; higher values make longer, more route-like trunks.
  double chain_bias = 0.65;
  /// Probability that a generated net receives loop edges (non-tree).
  double non_tree_fraction = 0.35;
  /// Maximum number of loop resistors added to a non-tree net. Kept small so
  /// per-net simple path counts stay in the paper's Fig. 2(b) range (max ~49).
  std::uint32_t max_extra_edges = 3;

  // Crosstalk.
  double coupling_prob = 0.55;     ///< probability a net has aggressor coupling
  double coupling_density = 0.12;  ///< fraction of nodes carrying coupling caps

  // Electrical values.
  double r_per_seg_mean = 32.0;        ///< ohms per wire segment
  double r_spread = 0.6;               ///< lognormal sigma of segment R
  double c_per_node_mean = 2.5e-15;    ///< farads of wire cap per node
  double c_spread = 0.5;               ///< lognormal sigma of node C
  double sink_pin_cap_min = 0.5e-15;   ///< farads, load pin cap lower bound
  double sink_pin_cap_max = 6.0e-15;   ///< farads, load pin cap upper bound
  double coupling_cap_mean = 0.9e-15;  ///< farads per coupling cap
};

/// Generates one RC net. The same (config, rng state) always produces the
/// same net, so callers seed rng for reproducibility.
[[nodiscard]] RcNet generate_net(const NetGenConfig& config, std::mt19937_64& rng,
                                 std::string name);

/// Generates a net with exactly \p fanout sinks (node count scaled to fanout);
/// used by the netlist generator to attach parasitics to logical nets.
[[nodiscard]] RcNet generate_net_for_fanout(const NetGenConfig& config,
                                            std::mt19937_64& rng, std::string name,
                                            std::uint32_t fanout);

}  // namespace gnntrans::rcnet
