// Reproduces Table II: benchmark statistics (#Cells, #Nets, non-tree nets,
// #FFs, #CPs) for the 11 training + 7 test designs, at CPU scale, next to the
// paper-reported cell counts for reference.
#include <cstdio>

#include "cell/library.hpp"
#include "netlist/generate.hpp"
#include "support.hpp"

using namespace gnntrans;

int main() {
  const bench::Scale scale = bench::Scale::from_env();
  const auto lib = cell::CellLibrary::make_default();

  std::printf("=== Table II reproduction: benchmark statistics ===\n");
  std::printf("(scaled: target cells = paper cells / 400 * %.2f)\n\n", scale.factor);

  bench::TablePrinter table(
      {"Split", "Benchmark", "PaperCells", "#Cells", "#Nets", "(Non-tree)",
       "#FFs", "#CPs"},
      {7, 12, 12, 9, 9, 12, 7, 7});
  table.print_header();

  std::size_t total_cells[2] = {0, 0}, total_nets[2] = {0, 0};
  std::size_t total_nontree[2] = {0, 0}, total_ffs[2] = {0, 0},
              total_cps[2] = {0, 0};

  for (const netlist::BenchmarkSpec& spec : netlist::paper_benchmarks(scale.factor)) {
    const netlist::Design d = netlist::generate_design(spec.config, lib, spec.name);
    const netlist::DesignStats s =
        netlist::compute_design_stats(d, netlist::sequential_flags(d, lib));
    const int split = spec.training ? 0 : 1;
    total_cells[split] += s.cells;
    total_nets[split] += s.nets;
    total_nontree[split] += s.non_tree_nets;
    total_ffs[split] += s.ffs;
    total_cps[split] += s.constrained_paths;

    table.print_row({spec.training ? "Train" : "Test", spec.name,
                     std::to_string(spec.paper_cells), std::to_string(s.cells),
                     std::to_string(s.nets),
                     "(" + std::to_string(s.non_tree_nets) + ")",
                     std::to_string(s.ffs), std::to_string(s.constrained_paths)});
  }
  for (int split : {0, 1}) {
    table.print_row({split == 0 ? "Train" : "Test", "Total", "-",
                     std::to_string(total_cells[split]),
                     std::to_string(total_nets[split]),
                     "(" + std::to_string(total_nontree[split]) + ")",
                     std::to_string(total_ffs[split]),
                     std::to_string(total_cps[split])});
  }
  std::printf(
      "\nShape check vs paper: non-tree fraction per design tracks the paper's "
      "ratio;\ntrain/test totals preserve the paper's ~11:7 design split.\n");
  return 0;
}
