#include "core/telemetry/log.hpp"

#include <cstdarg>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <iostream>
#include <stdexcept>

namespace gnntrans::telemetry {

namespace {

/// "2026-08-06T12:00:00.123Z" (UTC, millisecond resolution).
std::string format_timestamp(std::chrono::system_clock::time_point tp) {
  const std::time_t secs = std::chrono::system_clock::to_time_t(tp);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          tp.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[40];
  const std::size_t n = std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%S", &tm);
  std::snprintf(buf + n, sizeof(buf) - n, ".%03dZ", static_cast<int>(millis));
  return buf;
}

std::atomic<std::uint32_t> g_next_thread_id{0};

}  // namespace

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

LogLevel parse_log_level(std::string_view name, bool* ok) noexcept {
  if (ok) *ok = true;
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  if (ok) *ok = false;
  return LogLevel::kOff;
}

std::uint32_t this_thread_id() noexcept {
  thread_local const std::uint32_t id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void StreamSink::write(const LogRecord& record) {
  char head[64];
  std::snprintf(head, sizeof(head), "%-5s", to_string(record.level));
  out_ << format_timestamp(record.time) << ' ' << head << " ["
       << record.component << "] " << record.message << '\n';
  out_.flush();
}

void StderrSink::write(const LogRecord& record) {
  StreamSink sink(std::cerr);
  sink.write(record);
}

JsonLinesSink::JsonLinesSink(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::app);
  if (!*file)
    throw std::runtime_error("JsonLinesSink: cannot open " + path);
  out_ = file.get();
  owned_ = std::move(file);
}

void JsonLinesSink::write(const LogRecord& record) {
  *out_ << "{\"ts\":\"" << format_timestamp(record.time) << "\",\"level\":\""
        << to_string(record.level) << "\",\"component\":\""
        << json_escape(record.component) << "\",\"thread\":"
        << record.thread_id << ",\"msg\":\"" << json_escape(record.message)
        << "\"}\n";
  out_->flush();
}

Logger& Logger::global() {
  static Logger* logger = [] {
    auto* l = new Logger();
    l->add_sink(std::make_shared<StderrSink>());
    return l;
  }();
  return *logger;
}

void Logger::add_sink(std::shared_ptr<LogSink> sink) {
  const std::lock_guard<std::mutex> lock(mutex_);
  sinks_.push_back(std::move(sink));
}

void Logger::clear_sinks() {
  const std::lock_guard<std::mutex> lock(mutex_);
  sinks_.clear();
}

std::size_t Logger::sink_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sinks_.size();
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view message) {
  LogRecord record;
  record.level = level;
  record.component = component;
  record.message = message;
  record.time = std::chrono::system_clock::now();
  record.thread_id = this_thread_id();

  const std::lock_guard<std::mutex> lock(mutex_);
  for (const std::shared_ptr<LogSink>& sink : sinks_) sink->write(record);
}

void Logger::logf(LogLevel level, const char* component, const char* format,
                  ...) {
  char stack_buf[512];
  std::va_list args;
  va_start(args, format);
  const int needed = std::vsnprintf(stack_buf, sizeof(stack_buf), format, args);
  va_end(args);
  if (needed < 0) return;

  if (static_cast<std::size_t>(needed) < sizeof(stack_buf)) {
    log(level, component, std::string_view(stack_buf,
                                           static_cast<std::size_t>(needed)));
    return;
  }
  std::string big(static_cast<std::size_t>(needed), '\0');
  va_start(args, format);
  std::vsnprintf(big.data(), big.size() + 1, format, args);
  va_end(args);
  log(level, component, big);
}

}  // namespace gnntrans::telemetry
