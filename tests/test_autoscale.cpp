// Tests for metrics-driven pool autoscaling: ThreadPool::resize semantics,
// the PoolAutoscaler hysteresis law on synthetic batch stats, and the
// bitwise-determinism invariant across arbitrary resize schedules — both on
// raw estimate_batch and through EstimatorWireSource inside full-design STA.
//
// Controller tests pin max_threads explicitly: the default (hardware
// threads) would make expectations host-dependent.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <random>
#include <stdexcept>
#include <vector>

#include "cell/library.hpp"
#include "core/autoscaler.hpp"
#include "core/estimator.hpp"
#include "core/thread_pool.hpp"
#include "features/dataset.hpp"
#include "netlist/generate.hpp"
#include "netlist/sta.hpp"
#include "rcnet/generate.hpp"

namespace {

using namespace gnntrans;

// ---------------------------------------------------------------------------
// ThreadPool::resize

TEST(ThreadPoolResize, GrowShrinkKeepsIdsDense) {
  core::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);

  for (const std::size_t target : {4u, 2u, 8u, 3u}) {
    pool.resize(target);
    EXPECT_EQ(pool.size(), target);

    std::atomic<std::size_t> covered{0};
    std::atomic<std::size_t> max_worker{0};
    pool.parallel_for(64, [&](std::size_t, std::size_t worker) {
      covered.fetch_add(1, std::memory_order_relaxed);
      std::size_t seen = max_worker.load(std::memory_order_relaxed);
      while (worker > seen &&
             !max_worker.compare_exchange_weak(seen, worker)) {
      }
    });
    EXPECT_EQ(covered.load(), 64u);
    EXPECT_LT(max_worker.load(), target);
  }
}

TEST(ThreadPoolResize, ShrinkToInlineStillRuns) {
  core::ThreadPool pool(4);
  pool.resize(1);
  EXPECT_EQ(pool.size(), 1u);
  std::size_t sum = 0;  // inline execution: no races possible
  pool.parallel_for(10, [&](std::size_t i, std::size_t) { sum += i; });
  EXPECT_EQ(sum, 45u);
  // And back up: a pool shrunk to inline must be able to regrow.
  pool.resize(3);
  std::atomic<std::size_t> covered{0};
  pool.parallel_for(10, [&](std::size_t, std::size_t) { ++covered; });
  EXPECT_EQ(covered.load(), 10u);
}

TEST(ThreadPoolResize, ResizeToSameSizeIsANoop) {
  core::ThreadPool pool(2);
  pool.resize(2);
  EXPECT_EQ(pool.size(), 2u);
  std::atomic<std::size_t> covered{0};
  pool.parallel_for(8, [&](std::size_t, std::size_t) { ++covered; });
  EXPECT_EQ(covered.load(), 8u);
}

TEST(ThreadPoolResize, ExceptionsStillPropagateAfterResize) {
  core::ThreadPool pool(1);
  pool.resize(4);
  EXPECT_THROW(
      pool.parallel_for(16,
                        [&](std::size_t i, std::size_t) {
                          if (i == 7) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives the failed job.
  std::atomic<std::size_t> covered{0};
  pool.parallel_for(16, [&](std::size_t, std::size_t) { ++covered; });
  EXPECT_EQ(covered.load(), 16u);
}

TEST(ThreadPoolResize, StressResizeBetweenJobs) {
  core::ThreadPool pool(2);
  std::mt19937_64 rng(7);
  for (int round = 0; round < 40; ++round) {
    pool.resize(1 + static_cast<std::size_t>(rng() % 6));
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(round % 17,
                      [&](std::size_t i, std::size_t) { sum += i + 1; });
    const std::size_t n = round % 17;
    EXPECT_EQ(sum.load(), n * (n + 1) / 2);
  }
}

// ---------------------------------------------------------------------------
// PoolAutoscaler controller law

/// Synthetic batch stats: \p nets nets of \p per_net_seconds each, run on
/// \p threads workers at \p utilization busy fraction.
core::InferenceStats make_stats(std::size_t nets, double per_net_seconds,
                                std::size_t threads, double utilization) {
  core::InferenceStats stats;
  stats.nets = nets;
  stats.threads = threads;
  for (std::size_t i = 0; i < nets; ++i) stats.latency.observe(per_net_seconds);
  // latency.sum() / (wall * threads) == utilization
  stats.wall_seconds = stats.latency.sum() /
                       (utilization * static_cast<double>(threads));
  return stats;
}

core::AutoscalerConfig test_config() {
  core::AutoscalerConfig cfg;
  cfg.min_threads = 1;
  cfg.max_threads = 16;  // host-independent
  return cfg;
}

TEST(PoolAutoscaler, ColdControllerHolds) {
  core::PoolAutoscaler scaler(test_config());
  const core::AutoscaleDecision d = scaler.decide(256, 2);
  EXPECT_EQ(d.direction, core::ScaleDirection::kHold);
  EXPECT_EQ(d.target, 2u);
  EXPECT_STREQ(d.reason, "cold");
  EXPECT_EQ(scaler.resize_count(), 0u);
}

TEST(PoolAutoscaler, GrowsIntoDemonstratedHeadroomOnly) {
  core::PoolAutoscaler scaler(test_config());
  // Saturated single worker, 1 ms per net: demand for 64 nets over the 2 ms
  // budget is 32 workers, but capacity caps the first step at
  // ceil(1.0 * 1 * 2.0) = 2 — multiplicative-increase probing.
  scaler.observe(make_stats(64, 1e-3, 1, 1.0));
  const core::AutoscaleDecision d = scaler.decide(64, 1);
  EXPECT_EQ(d.direction, core::ScaleDirection::kGrow);
  EXPECT_EQ(d.target, 2u);
  EXPECT_EQ(d.ideal, 2u);
  EXPECT_EQ(scaler.resize_count(), 1u);
}

TEST(PoolAutoscaler, CooldownBlocksConsecutiveResizes) {
  core::PoolAutoscaler scaler(test_config());  // cooldown_batches = 2
  scaler.observe(make_stats(64, 1e-3, 1, 1.0));
  ASSERT_TRUE(scaler.decide(64, 1).resized());
  scaler.observe(make_stats(64, 1e-3, 2, 1.0));
  const core::AutoscaleDecision d1 = scaler.decide(64, 2);
  EXPECT_EQ(d1.direction, core::ScaleDirection::kHold);
  EXPECT_STREQ(d1.reason, "cooldown");
  const core::AutoscaleDecision d2 = scaler.decide(64, 2);
  EXPECT_STREQ(d2.reason, "cooldown");
  // Cooldown spent: the pool may move again.
  EXPECT_TRUE(scaler.decide(64, 2).resized());
}

TEST(PoolAutoscaler, IdlePoolNeverGrows) {
  core::AutoscalerConfig cfg = test_config();
  // A permissive capacity bound isolates the utilization gate: without it,
  // grow_headroom = 2 would already cap ideal at current for an idle pool.
  cfg.grow_headroom = 10.0;
  core::PoolAutoscaler scaler(cfg);
  // 30% utilization: the workers were mostly idle, so more of them cannot
  // help no matter how large the offered load is.
  scaler.observe(make_stats(64, 1e-3, 4, 0.3));
  const core::AutoscaleDecision d = scaler.decide(512, 4);
  EXPECT_EQ(d.direction, core::ScaleDirection::kHold);
  EXPECT_STREQ(d.reason, "idle-pool");
}

TEST(PoolAutoscaler, CapacityBoundCapsGrowthOfAnIdlePool) {
  // The default headroom (2.0) reaches the same conclusion through the
  // capacity bound: ideal never exceeds what the busy workers could cover.
  core::PoolAutoscaler scaler(test_config());
  scaler.observe(make_stats(64, 1e-3, 4, 0.3));
  const core::AutoscaleDecision d = scaler.decide(512, 4);
  EXPECT_EQ(d.direction, core::ScaleDirection::kHold);
  EXPECT_EQ(d.ideal, 4u);
  EXPECT_STREQ(d.reason, "steady");
}

TEST(PoolAutoscaler, ShrinkDeadbandHoldsSmallMoves) {
  core::PoolAutoscaler scaler(test_config());
  // Demand 3 on a 4-worker pool: 3 > 4 * 0.6 = 2.4, inside the deadband.
  scaler.observe(make_stats(6, 1e-3, 4, 1.0));
  const core::AutoscaleDecision d = scaler.decide(6, 4);
  EXPECT_EQ(d.direction, core::ScaleDirection::kHold);
  EXPECT_EQ(d.ideal, 3u);
  EXPECT_STREQ(d.reason, "deadband");
}

TEST(PoolAutoscaler, ShrinksToDemandOnSmallOffered) {
  core::PoolAutoscaler scaler(test_config());
  // 0.5 ms per net: demand for 2 nets over the 2 ms budget is ceil(0.5) = 1,
  // with margin against the histogram's floating-point sum accumulation.
  scaler.observe(make_stats(64, 5e-4, 8, 1.0));
  // 2 offered nets put an 8-worker pool above the never-more-workers-than-
  // nets bound, so the first decision clamps straight to the boundary.
  const core::AutoscaleDecision first = scaler.decide(2, 8);
  EXPECT_EQ(first.direction, core::ScaleDirection::kShrink);
  EXPECT_EQ(first.target, 2u);
  EXPECT_EQ(scaler.resize_count(), 1u);

  // Once inside bounds and past the cooldown, hysteresis shrinks to demand.
  scaler.observe(make_stats(2, 5e-4, 2, 1.0));
  EXPECT_STREQ(scaler.decide(2, 2).reason, "cooldown");
  EXPECT_STREQ(scaler.decide(2, 2).reason, "cooldown");
  const core::AutoscaleDecision settled = scaler.decide(2, 2);
  EXPECT_EQ(settled.direction, core::ScaleDirection::kShrink);
  EXPECT_EQ(settled.target, 1u);
  EXPECT_EQ(scaler.resize_count(), 2u);
}

TEST(PoolAutoscaler, HardBoundsBeatHysteresis) {
  core::AutoscalerConfig cfg = test_config();
  cfg.min_threads = 2;
  cfg.max_threads = 4;
  core::PoolAutoscaler scaler(cfg);
  // Even a cold controller moves a pool that sits outside [min, max].
  const core::AutoscaleDecision high = scaler.decide(64, 8);
  EXPECT_EQ(high.direction, core::ScaleDirection::kShrink);
  EXPECT_EQ(high.target, 4u);
  core::PoolAutoscaler scaler2(cfg);
  const core::AutoscaleDecision low = scaler2.decide(64, 1);
  EXPECT_EQ(low.direction, core::ScaleDirection::kGrow);
  EXPECT_EQ(low.target, 2u);
}

TEST(PoolAutoscaler, EwmaTracksServiceTime) {
  core::AutoscalerConfig cfg = test_config();
  cfg.ewma_alpha = 0.5;
  core::PoolAutoscaler scaler(cfg);
  EXPECT_DOUBLE_EQ(scaler.service_time_ewma(), 0.0);
  scaler.observe(make_stats(10, 1e-3, 1, 1.0));
  // First observation seeds the EWMA directly. The histogram buckets the
  // exact latencies, but sum() is exact, so the mean is exact too.
  EXPECT_NEAR(scaler.service_time_ewma(), 1e-3, 1e-12);
  scaler.observe(make_stats(10, 3e-3, 1, 1.0));
  EXPECT_NEAR(scaler.service_time_ewma(), 2e-3, 1e-12);
  EXPECT_NEAR(scaler.last_utilization(), 1.0, 1e-9);
}

TEST(PoolAutoscaler, EmptyBatchIsIgnored) {
  core::PoolAutoscaler scaler(test_config());
  scaler.observe(core::InferenceStats{});
  const core::AutoscaleDecision d = scaler.decide(64, 1);
  EXPECT_STREQ(d.reason, "cold");  // still cold: nothing was observed
}

// ---------------------------------------------------------------------------
// Bitwise determinism across resize schedules

class AutoscaleServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    library_ = std::make_unique<cell::CellLibrary>(
        cell::CellLibrary::make_default());

    features::WireDatasetConfig dcfg;
    dcfg.net_count = 12;
    dcfg.seed = 2026;
    dcfg.sim_config.steps = 200;
    const auto records = features::generate_wire_records(dcfg, *library_);

    core::WireTimingEstimator::Options opt;
    opt.model.hidden_dim = 8;
    opt.model.gnn_layers = 2;
    opt.model.transformer_layers = 1;
    opt.model.heads = 2;
    opt.model.mlp_hidden = 16;
    opt.model.seed = 7;
    opt.train.epochs = 2;
    estimator_ = std::make_unique<core::WireTimingEstimator>(
        core::WireTimingEstimator::train(records, opt));

    std::mt19937_64 rng(41);
    rcnet::NetGenConfig ncfg;
    while (nets_.size() < 16) {
      rcnet::RcNet net =
          rcnet::generate_net(ncfg, rng, "as" + std::to_string(nets_.size()));
      if (!net.validate().empty()) continue;
      nets_.push_back(std::move(net));
    }
    for (const rcnet::RcNet& net : nets_)
      contexts_.push_back(features::random_context(*library_, net, rng));
  }

  static void TearDownTestSuite() {
    estimator_.reset();
    library_.reset();
    nets_.clear();
    contexts_.clear();
  }

  static std::vector<core::NetBatchItem> items() {
    std::vector<core::NetBatchItem> out(nets_.size());
    for (std::size_t i = 0; i < nets_.size(); ++i)
      out[i] = {&nets_[i], &contexts_[i]};
    return out;
  }

  static std::unique_ptr<cell::CellLibrary> library_;
  static std::unique_ptr<core::WireTimingEstimator> estimator_;
  static std::vector<rcnet::RcNet> nets_;
  static std::vector<features::NetContext> contexts_;
};

std::unique_ptr<cell::CellLibrary> AutoscaleServingTest::library_;
std::unique_ptr<core::WireTimingEstimator> AutoscaleServingTest::estimator_;
std::vector<rcnet::RcNet> AutoscaleServingTest::nets_;
std::vector<features::NetContext> AutoscaleServingTest::contexts_;

TEST_F(AutoscaleServingTest, BitwiseDeterminismAcrossResizeSchedule) {
  const auto batch = items();
  const auto reference = estimator_->estimate_batch(batch, {.threads = 1});

  // The acceptance schedule: resize the live pool 1 -> 4 -> 2 -> 8 between
  // batches, per-worker workspaces trimmed in lockstep. Every batch must
  // reproduce the single-thread outputs bit for bit.
  core::ThreadPool pool(1);
  std::vector<nn::Workspace> workspaces;
  for (const std::size_t threads : {1u, 4u, 2u, 8u}) {
    pool.resize(threads);
    if (workspaces.size() > threads) workspaces.resize(threads);
    core::BatchOptions options;
    options.threads = threads;
    options.pool = threads > 1 ? &pool : nullptr;
    options.workspaces = &workspaces;
    const auto out = estimator_->estimate_batch(batch, options);

    ASSERT_EQ(out.size(), reference.size()) << "T=" << threads;
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i].size(), reference[i].size()) << "net " << i;
      for (std::size_t q = 0; q < out[i].size(); ++q) {
        EXPECT_EQ(out[i][q].sink, reference[i][q].sink);
        EXPECT_EQ(out[i][q].slew, reference[i][q].slew)
            << "net " << i << " T=" << threads;
        EXPECT_EQ(out[i][q].delay, reference[i][q].delay)
            << "net " << i << " T=" << threads;
        EXPECT_EQ(out[i][q].provenance, reference[i][q].provenance);
      }
    }
  }
}

TEST_F(AutoscaleServingTest, AutoscaledStaMatchesSingleThread) {
  netlist::DesignGenConfig cfg;
  cfg.seed = 5;
  cfg.levels = 4;
  cfg.cells_per_level = 6;
  cfg.startpoints = 4;
  const netlist::Design design =
      netlist::generate_design(cfg, *library_, "autoscale_sta");

  core::EstimatorWireSource serial(*estimator_, design, *library_, 1);
  const netlist::StaResult r1 = netlist::run_sta(design, *library_, serial);

  core::EstimatorWireSource scaled(*estimator_, design, *library_, 1);
  core::AutoscalerConfig acfg = test_config();
  // An aggressive controller (resize on every batch if it wants to) is the
  // worst case for the determinism invariant.
  acfg.cooldown_batches = 0;
  acfg.grow_deadband = 1.0;
  acfg.shrink_deadband = 1.0;
  acfg.min_grow_utilization = 0.0;
  acfg.target_batch_seconds = 1e-6;  // tiny budget: always demand more
  scaled.enable_autoscale(acfg);
  const netlist::StaResult r2 = netlist::run_sta(design, *library_, scaled);

  ASSERT_EQ(r1.arrival.size(), r2.arrival.size());
  for (std::size_t v = 0; v < r1.arrival.size(); ++v) {
    EXPECT_EQ(r1.arrival[v], r2.arrival[v]) << "instance " << v;
    EXPECT_EQ(r1.slew[v], r2.slew[v]) << "instance " << v;
  }
  ASSERT_EQ(r1.endpoint_arrival.size(), r2.endpoint_arrival.size());
  for (std::size_t e = 0; e < r1.endpoint_arrival.size(); ++e)
    EXPECT_EQ(r1.endpoint_arrival[e], r2.endpoint_arrival[e]);
  EXPECT_EQ(serial.stats().nets, scaled.stats().nets);
  ASSERT_NE(scaled.autoscaler(), nullptr);
}

TEST_F(AutoscaleServingTest, WorkspacesTrimmedOnShrink) {
  netlist::DesignGenConfig cfg;
  cfg.seed = 6;
  cfg.levels = 3;
  cfg.cells_per_level = 8;
  cfg.startpoints = 4;
  const netlist::Design design =
      netlist::generate_design(cfg, *library_, "trim_ws");

  core::EstimatorWireSource source(*estimator_, design, *library_, 4);
  (void)netlist::run_sta(design, *library_, source);
  EXPECT_EQ(source.threads(), 4u);
  EXPECT_EQ(source.workspace_count(), 4u);

  // Shrinking the pool trims the per-worker workspaces in lockstep; stale
  // entries would pin their peak arena memory for the process lifetime.
  source.set_threads(2);
  EXPECT_EQ(source.threads(), 2u);
  EXPECT_EQ(source.workspace_count(), 2u);
  (void)netlist::run_sta(design, *library_, source);
  EXPECT_EQ(source.workspace_count(), 2u);
}

}  // namespace
