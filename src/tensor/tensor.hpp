/// \file tensor.hpp
/// Minimal reverse-mode autograd tensor library.
///
/// The paper trains its models with PyTorch; this repo has no external ML
/// dependency, so this module supplies the needed subset: 2-D float tensors,
/// a dynamic tape built by the ops in ops.hpp, and backward() for reverse-mode
/// differentiation. Graphs here are small (RC nets of tens to a few hundred
/// nodes), so a dense row-major representation is appropriate.
///
/// Threading: the autograd mode flag is thread-local; tensors themselves are
/// not synchronized and must not be shared across threads while training.
#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

namespace gnntrans::tensor {

class Tensor;

/// Shared state behind a Tensor handle.
struct TensorImpl {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<float> value;
  std::vector<float> grad;  ///< allocated lazily by backward()
  bool requires_grad = false;

  /// Parents in the autograd tape (empty for leaves).
  std::vector<std::shared_ptr<TensorImpl>> parents;
  /// Accumulates parent gradients given this node's grad; null for leaves.
  std::function<void(const TensorImpl&)> backward_fn;

  [[nodiscard]] std::size_t size() const noexcept { return rows * cols; }
  void ensure_grad() {
    if (grad.size() != value.size()) grad.assign(value.size(), 0.0f);
  }
};

/// RAII guard disabling tape recording (inference mode) on this thread.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// True when ops should record the tape on this thread.
[[nodiscard]] bool grad_enabled() noexcept;

/// Value-semantics handle to a shared tensor node.
class Tensor {
 public:
  Tensor() = default;

  /// Creates a rows x cols tensor of zeros.
  Tensor(std::size_t rows, std::size_t cols, bool requires_grad = false);

  /// Creates a tensor adopting \p data (size must equal rows*cols).
  static Tensor from_data(std::vector<float> data, std::size_t rows,
                          std::size_t cols, bool requires_grad = false);

  [[nodiscard]] bool defined() const noexcept { return impl_ != nullptr; }
  [[nodiscard]] std::size_t rows() const noexcept { return impl_->rows; }
  [[nodiscard]] std::size_t cols() const noexcept { return impl_->cols; }
  [[nodiscard]] std::size_t size() const noexcept { return impl_->size(); }
  [[nodiscard]] bool requires_grad() const noexcept { return impl_->requires_grad; }

  [[nodiscard]] std::span<float> values() noexcept { return impl_->value; }
  [[nodiscard]] std::span<const float> values() const noexcept { return impl_->value; }
  /// Gradient buffer; empty until backward() has touched this tensor.
  [[nodiscard]] std::span<float> grad() noexcept { return impl_->grad; }
  [[nodiscard]] std::span<const float> grad() const noexcept { return impl_->grad; }

  [[nodiscard]] float operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows() && c < cols());
    return impl_->value[r * cols() + c];
  }
  [[nodiscard]] float& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows() && c < cols());
    return impl_->value[r * cols() + c];
  }

  /// Scalar convenience for 1x1 tensors (losses).
  [[nodiscard]] float item() const noexcept {
    assert(size() == 1);
    return impl_->value[0];
  }

  /// Runs reverse-mode autodiff from this (scalar) tensor. Seeds d(self)=1,
  /// accumulates into every reachable requires_grad leaf. Gradients add up
  /// across calls; use zero_grad() between steps.
  void backward();

  /// Clears this tensor's gradient buffer.
  void zero_grad() noexcept {
    if (!impl_->grad.empty()) std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
  }

  /// Drops tape edges (parents/backward) making this a leaf; used by
  /// optimizers and serialization.
  void detach_() noexcept {
    impl_->parents.clear();
    impl_->backward_fn = nullptr;
  }

  [[nodiscard]] const std::shared_ptr<TensorImpl>& impl() const noexcept { return impl_; }

 private:
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}
  friend Tensor make_op_result(std::size_t rows, std::size_t cols,
                               std::vector<std::shared_ptr<TensorImpl>> parents,
                               std::function<void(const TensorImpl&)> backward_fn);

  std::shared_ptr<TensorImpl> impl_;
};

/// Creates a tape node for an op result. When autograd is disabled or no
/// parent requires grad, the node is a plain leaf.
[[nodiscard]] Tensor make_op_result(
    std::size_t rows, std::size_t cols,
    std::vector<std::shared_ptr<TensorImpl>> parents,
    std::function<void(const TensorImpl&)> backward_fn);

}  // namespace gnntrans::tensor
