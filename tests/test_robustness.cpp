// Edge-case and failure-injection tests across module boundaries: wrong
// inputs must fail loudly, degenerate-but-legal inputs must work, and
// inference must be side-effect free.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <sstream>

#include "baseline/gbdt.hpp"
#include "core/estimator.hpp"
#include "features/dataset.hpp"
#include "netlist/generate.hpp"
#include "rcnet/generate.hpp"
#include "sim/transient.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace gnntrans;

// ---- Golden simulator window handling ----

TEST(TransientRobustness, AutoWindowSettlesExtremeRcWithCoarseSteps) {
  // A very slow net (tau ~ 1ns) must still settle: the simulation window is
  // auto-sized from the Elmore estimate, so even a coarse step count finds
  // all threshold crossings by interpolation.
  rcnet::RcNet net;
  net.source = 0;
  net.sinks = {1};
  net.ground_cap = {1e-15, 200e-15};
  net.resistors = {{0, 1, 5000.0}};
  sim::TransientConfig cfg;
  cfg.steps = 32;
  cfg.si.enabled = false;
  const sim::TransientResult res = sim::simulate(net, cfg, 1e-9);
  EXPECT_TRUE(res.sinks[0].settled);
  EXPECT_GT(res.sinks[0].delay, 0.0);
}

TEST(TransientRobustness, NoExtensionRunsWhenWindowSuffices) {
  rcnet::RcNet net;
  net.source = 0;
  net.sinks = {1};
  net.ground_cap = {1e-15, 5e-15};
  net.resistors = {{0, 1, 50.0}};
  sim::TransientConfig cfg;
  cfg.steps = 256;
  cfg.max_extensions = 4;
  cfg.si.enabled = false;
  const sim::TransientResult res = sim::simulate(net, cfg, 3e-11);
  EXPECT_TRUE(res.sinks[0].settled);
  EXPECT_EQ(res.steps_executed, 256u);  // settled inside the base window
}

TEST(TransientRobustness, CoarseAndFineStepsAgreeOnDelay) {
  rcnet::RcNet net;
  net.source = 0;
  net.sinks = {1};
  net.ground_cap = {1e-15, 20e-15};
  net.resistors = {{0, 1, 500.0}};
  sim::TransientConfig coarse;
  coarse.steps = 200;
  coarse.si.enabled = false;
  sim::TransientConfig fine = coarse;
  fine.steps = 4000;
  const auto a = sim::simulate(net, coarse, 3e-11);
  const auto b = sim::simulate(net, fine, 3e-11);
  ASSERT_TRUE(a.sinks[0].settled && b.sinks[0].settled);
  // Trapezoidal integration is 2nd order: 20x fewer steps, tiny delay shift.
  EXPECT_NEAR(a.sinks[0].delay, b.sinks[0].delay, 0.02 * b.sinks[0].delay);
}

TEST(TransientRobustness, TwoNodeMinimalNetWorks) {
  rcnet::RcNet net;
  net.source = 0;
  net.sinks = {1};
  net.ground_cap = {0.5e-15, 1e-15};
  net.resistors = {{0, 1, 10.0}};
  const sim::TransientResult res = sim::simulate(net, sim::TransientConfig{}, 2e-11);
  EXPECT_TRUE(res.sinks[0].settled);
  EXPECT_GT(res.sinks[0].slew, 0.0);
}

// ---- Estimator API misuse ----

std::vector<features::WireRecord> tiny_records(std::size_t n) {
  const auto lib = cell::CellLibrary::make_default();
  features::WireDatasetConfig cfg;
  cfg.net_count = n;
  cfg.sim_config.steps = 200;
  cfg.seed = 99;
  return features::generate_wire_records(cfg, lib);
}

core::WireTimingEstimator tiny_estimator() {
  core::WireTimingEstimator::Options opt;
  opt.model.hidden_dim = 8;
  opt.model.gnn_layers = 2;
  opt.model.transformer_layers = 1;
  opt.model.heads = 2;
  opt.train.epochs = 2;
  return core::WireTimingEstimator::train(tiny_records(10), opt);
}

TEST(EstimatorRobustness, MismatchedContextLoadsThrow) {
  const auto est = tiny_estimator();
  const auto recs = tiny_records(2);
  features::NetContext bad = recs[0].context;
  bad.loads.clear();
  EXPECT_THROW(est.estimate(recs[0].net, bad), std::invalid_argument);
}

TEST(EstimatorRobustness, InferenceLeavesGradientsUntouched) {
  const auto est = tiny_estimator();
  const auto recs = tiny_records(2);
  // Clear the residue of training, then run inference: NoGradGuard inside
  // estimate() must prevent any new gradient accumulation.
  for (auto p : est.model().parameters()) p.zero_grad();
  (void)est.estimate(recs[0].net, recs[0].context);
  for (const auto& p : est.model().parameters())
    EXPECT_TRUE(p.grad().empty() ||
                std::all_of(p.grad().begin(), p.grad().end(),
                            [](float g) { return g == 0.0f; }));
}

TEST(EstimatorRobustness, InferenceIsDeterministic) {
  const auto est = tiny_estimator();
  const auto recs = tiny_records(3);
  const auto a = est.estimate(recs[1].net, recs[1].context);
  const auto b = est.estimate(recs[1].net, recs[1].context);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t q = 0; q < a.size(); ++q) {
    EXPECT_DOUBLE_EQ(a[q].delay, b[q].delay);
    EXPECT_DOUBLE_EQ(a[q].slew, b[q].slew);
  }
}

TEST(EstimatorRobustness, CorruptCheckpointRejected) {
  const auto est = tiny_estimator();
  std::stringstream buf;
  est.save(buf);
  std::string payload = buf.str();
  payload[10] ^= 0x5A;  // flip bits inside the magic/header region
  std::stringstream corrupt(payload);
  EXPECT_THROW(core::WireTimingEstimator::load(corrupt), std::runtime_error);
}

TEST(EstimatorRobustness, TruncatedCheckpointRejected) {
  const auto est = tiny_estimator();
  std::stringstream buf;
  est.save(buf);
  std::string payload = buf.str();
  payload.resize(payload.size() / 3);
  std::stringstream cut(payload);
  EXPECT_THROW(core::WireTimingEstimator::load(cut), std::runtime_error);
}

// ---- GBDT structural invariants ----

TEST(GbdtRobustness, DepthBoundRespected) {
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<float> dist(0.0f, 1.0f);
  std::vector<std::vector<float>> x;
  std::vector<double> y;
  for (int i = 0; i < 256; ++i) {
    const float a = dist(rng);
    x.push_back({a});
    y.push_back(std::sin(20.0 * a));
  }
  baseline::RegressionTree tree;
  tree.fit(x, y, /*max_depth=*/2, /*min_samples_leaf=*/1);
  // Depth 2 => at most 1 + 2 + 4 = 7 nodes.
  EXPECT_LE(tree.node_count(), 7u);
}

TEST(GbdtRobustness, SingleSampleYieldsConstantLeaf) {
  baseline::RegressionTree tree;
  tree.fit({{1.0f}}, {42.0}, 4, 1);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<float>{0.0f}), 42.0);
}

// ---- Generator stress ----

TEST(GeneratorRobustness, MinimumSizeNetsAreValid) {
  std::mt19937_64 rng(4);
  rcnet::NetGenConfig cfg;
  cfg.min_nodes = 3;
  cfg.max_nodes = 3;
  cfg.min_sinks = 1;
  cfg.max_sinks = 1;
  for (int i = 0; i < 30; ++i) {
    const rcnet::RcNet net = rcnet::generate_net(cfg, rng, "tiny");
    EXPECT_TRUE(net.validate().empty());
    EXPECT_TRUE(sim::compute_moments(net).m1[net.sinks[0]] > 0.0);
  }
}

TEST(GeneratorRobustness, HugeFanoutHonored) {
  std::mt19937_64 rng(5);
  rcnet::NetGenConfig cfg;
  const rcnet::RcNet net = rcnet::generate_net_for_fanout(cfg, rng, "wide", 40);
  EXPECT_EQ(net.sinks.size(), 40u);
  EXPECT_TRUE(net.validate().empty());
}

TEST(GeneratorRobustness, BenchmarkNonTreeFractionsTrackTargets) {
  // Per design the sample is small (tens of nets), so allow wide slop there
  // and check the aggregate across all 18 designs tightly.
  const auto lib = cell::CellLibrary::make_default();
  double total_nets = 0.0, total_non_tree = 0.0, total_target = 0.0;
  for (const netlist::BenchmarkSpec& spec : netlist::paper_benchmarks(1.0)) {
    const netlist::Design d =
        netlist::generate_design(spec.config, lib, spec.name);
    const double fraction = static_cast<double>(d.non_tree_net_count()) /
                            static_cast<double>(d.net_count());
    EXPECT_NEAR(fraction, spec.config.net_config.non_tree_fraction, 0.25)
        << spec.name;
    total_nets += static_cast<double>(d.net_count());
    total_non_tree += static_cast<double>(d.non_tree_net_count());
    total_target += spec.config.net_config.non_tree_fraction *
                    static_cast<double>(d.net_count());
  }
  EXPECT_NEAR(total_non_tree / total_nets, total_target / total_nets, 0.05);
}

// ---- Dataset / standardizer degenerate input ----

TEST(DatasetRobustness, StandardizerRejectsEmptyFit) {
  features::Standardizer std_;
  EXPECT_THROW(std_.fit({}), std::logic_error);
}

TEST(DatasetRobustness, SingleRecordDatasetTrains) {
  const auto recs = tiny_records(1);
  core::WireTimingEstimator::Options opt;
  opt.model.hidden_dim = 8;
  opt.model.gnn_layers = 1;
  opt.model.transformer_layers = 1;
  opt.model.heads = 2;
  opt.train.epochs = 2;
  const auto est = core::WireTimingEstimator::train(recs, opt);
  EXPECT_EQ(est.estimate(recs[0].net, recs[0].context).size(),
            recs[0].net.sinks.size());
}

}  // namespace
