#include "netlist/sta.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <numeric>

#include "core/telemetry/telemetry.hpp"
#include "sim/ceff.hpp"

namespace gnntrans::netlist {

namespace {

using Clock = std::chrono::steady_clock;

/// STA metrics: level/net progress counters plus the wire-vs-cell wall split
/// of the most recent run (gauges, seconds).
struct StaMetrics {
  telemetry::Counter levels = telemetry::MetricsRegistry::global().counter(
      "gnntrans_sta_levels_total", "Topological levels propagated");
  telemetry::Counter wire_nets = telemetry::MetricsRegistry::global().counter(
      "gnntrans_sta_wire_nets_total", "Nets handed to the wire timing source");
  telemetry::Gauge gate_seconds = telemetry::MetricsRegistry::global().gauge(
      "gnntrans_sta_gate_seconds", "NLDM gate timing wall time of the last run");
  telemetry::Gauge wire_seconds = telemetry::MetricsRegistry::global().gauge(
      "gnntrans_sta_wire_seconds",
      "Wire-timing-source wall time of the last run");

  static const StaMetrics& get() {
    static const StaMetrics metrics;
    return metrics;
  }
};

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Effective load seen by a driver: net wire cap + load pin caps.
double net_load_cap(const Design& design, const cell::CellLibrary& library,
                    const DesignNet& net) {
  double cap = net.rc.total_ground_cap();
  for (InstanceId load : net.loads)
    cap += library.at(design.instances[load].cell_index).input_cap;
  return cap;
}

/// Shielding-aware load: pi-reduce the wire (with load pin caps folded onto
/// the sinks) and match average current over the driver transition. One
/// refinement iteration resolves the transition/Ceff interdependence.
double net_effective_cap(const Design& design, const cell::CellLibrary& library,
                         const DesignNet& net, const cell::Cell& driver,
                         double input_slew) {
  rcnet::RcNet loaded = net.rc;
  for (std::size_t s = 0; s < net.loads.size(); ++s)
    loaded.ground_cap[loaded.sinks[s]] +=
        library.at(design.instances[net.loads[s]].cell_index).input_cap;

  const sim::PiModel pi = sim::reduce_to_pi(loaded);
  double transition =
      driver.arc.output_slew.lookup(input_slew, pi.total_cap()) / 0.6;
  double ceff = sim::effective_capacitance(pi, transition);
  // Refine once: a lighter load shortens the transition, which raises Ceff.
  transition = driver.arc.output_slew.lookup(input_slew, ceff) / 0.6;
  return sim::effective_capacitance(pi, transition);
}

}  // namespace

double nldm_load_cap(const Design& design, const cell::CellLibrary& library,
                     const DesignNet& net, const cell::Cell& driver,
                     double input_slew, const StaConfig& config) {
  return config.use_ceff
             ? net_effective_cap(design, library, net, driver, input_slew)
             : net_load_cap(design, library, net);
}

StaResult run_sta(const Design& design, const cell::CellLibrary& library,
                  WireTimingSource& wire_source, const StaConfig& config,
                  StaWireTable* wire_table) {
  const telemetry::TraceSpan sta_span("run_sta", "sta");
  const std::size_t n = design.instances.size();
  StaResult result;
  result.arrival.assign(n, 0.0);
  result.slew.assign(n, config.launch_slew);
  result.arrival_settled.assign(n, 1);
  result.critical_net.assign(n, StaResult::kNone);
  result.critical_wire_delay.assign(n, 0.0);
  result.gate_delay.assign(n, 0.0);

  // Per-net per-sink wire timing, recorded as nets are scattered; feeds the
  // backward required-time pass and, via \p wire_table, the incremental
  // engine's per-pin seed state.
  StaWireTable table;
  table.nets.resize(design.nets.size());

  // Best (latest) arrival seen at each instance's data input so far, and
  // whether that arrival is trustworthy (critical fanin settled all the way).
  std::vector<double> in_arrival(n, -1.0);
  std::vector<double> in_slew(n, config.launch_slew);
  std::vector<std::uint8_t> in_settled(n, 1);

  // Process instances level by level; fanin always comes from lower levels.
  std::vector<InstanceId> order(n);
  std::iota(order.begin(), order.end(), InstanceId{0});
  std::stable_sort(order.begin(), order.end(), [&](InstanceId a, InstanceId b) {
    return design.instances[a].level < design.instances[b].level;
  });

  std::vector<bool> is_startpoint(n, false);
  for (InstanceId s : design.startpoints) is_startpoint[s] = true;

  const auto gate_start = Clock::now();
  double wire_total = 0.0;

  // Process one topological level at a time. Every fanin of a level-L
  // instance sits at a level < L (levels are longest-path depths), so all
  // wire requests of a level are independent and can be served as one batch —
  // this is where batched sources (estimator threading + arena reuse)
  // amortize across nets. Results are identical to the per-net loop.
  std::size_t block_start = 0;
  std::vector<WireTimingRequest> requests;
  std::vector<InstanceId> request_owner;  ///< driver instance per request
  while (block_start < order.size()) {
    const std::uint32_t level = design.instances[order[block_start]].level;
    std::size_t block_end = block_start;
    while (block_end < order.size() &&
           design.instances[order[block_end]].level == level)
      ++block_end;

    char level_name[32];
    std::snprintf(level_name, sizeof(level_name), "sta_level_%u", level);
    const telemetry::TraceSpan level_span(level_name, "sta");

    // Pass 1: gate timing for every instance of the level; collect the wire
    // timing requests its driven nets generate. (The gate span is recorded
    // explicitly: an RAII span here would not close until the wire pass ran.)
    telemetry::TraceRecorder& recorder = telemetry::TraceRecorder::global();
    const std::int64_t gate_begin =
        recorder.enabled() ? recorder.now_ns() : -1;
    requests.clear();
    request_owner.clear();
    for (std::size_t k = block_start; k < block_end; ++k) {
      const InstanceId v = order[k];
      const cell::Cell& c = library.at(design.instances[v].cell_index);
      const std::uint32_t net_idx = design.driven_net[v];

      if (net_idx == Design::kNoNet) {
        // Endpoint: arrival at the D pin is what Table V compares.
        result.arrival[v] = std::max(0.0, in_arrival[v]);
        result.slew[v] = in_slew[v];
        result.arrival_settled[v] = in_settled[v];
        continue;
      }
      const DesignNet& net = design.nets[net_idx];
      const double pin_slew_for_ceff =
          is_startpoint[v] ? config.launch_slew : in_slew[v];
      const double load_cap =
          nldm_load_cap(design, library, net, c, pin_slew_for_ceff, config);

      if (is_startpoint[v]) {
        // Launch FF: clock-to-q through the NLDM arc under the clock slew.
        result.gate_delay[v] = c.arc.delay.lookup(config.launch_slew, load_cap);
        result.arrival[v] = result.gate_delay[v];
        result.slew[v] = c.arc.output_slew.lookup(config.launch_slew, load_cap);
      } else {
        const double pin_arrival = std::max(0.0, in_arrival[v]);
        const double pin_slew = in_slew[v];
        result.gate_delay[v] = c.arc.delay.lookup(pin_slew, load_cap);
        result.arrival[v] = pin_arrival + result.gate_delay[v];
        result.slew[v] = c.arc.output_slew.lookup(pin_slew, load_cap);
        result.arrival_settled[v] = in_settled[v];
      }
      requests.push_back({&net.rc, result.slew[v], c.drive_resistance});
      request_owner.push_back(v);
    }

    if (gate_begin >= 0)
      recorder.record("gate_timing", "sta", gate_begin, recorder.now_ns());
    StaMetrics::get().levels.inc();
    StaMetrics::get().wire_nets.inc(requests.size());

    // Pass 2: wire propagation for the whole level in one batch.
    const auto wire_start = Clock::now();
    std::vector<std::vector<sim::SinkTiming>> sink_batches;
    {
      const telemetry::TraceSpan wire_span("wire_timing", "sta");
      sink_batches = wire_source.time_nets(requests);
    }
    wire_total += seconds_since(wire_start);

    // Pass 3: scatter sink timings to the load pins (all at higher levels).
    for (std::size_t r = 0; r < sink_batches.size(); ++r) {
      const InstanceId v = request_owner[r];
      const std::uint32_t net_idx = design.driven_net[v];
      const DesignNet& net = design.nets[net_idx];
      const std::vector<sim::SinkTiming>& sinks = sink_batches[r];
      table.nets[net_idx].resize(std::min(net.loads.size(), sinks.size()));
      for (std::size_t s = 0; s < net.loads.size() && s < sinks.size(); ++s) {
        table.nets[net_idx][s] = {sinks[s].delay, sinks[s].slew,
                                  sinks[s].settled};
        const InstanceId load = net.loads[s];
        if (!sinks[s].settled) ++result.unsettled_sinks;
        const double arr = result.arrival[v] + sinks[s].delay;
        if (arr > in_arrival[load]) {
          in_arrival[load] = arr;
          in_slew[load] = sinks[s].slew;
          // Taint tracking: an unsettled sink (a failed estimator net's zero
          // delay, or a transient that never crossed 80%) still propagates
          // its lower-bound arrival, but everything downstream is flagged so
          // the corruption is never silent.
          in_settled[load] =
              sinks[s].settled && result.arrival_settled[v] ? 1 : 0;
          result.critical_net[load] = net_idx;
          result.critical_wire_delay[load] = sinks[s].delay;
        }
      }
    }
    block_start = block_end;
  }

  result.wire_seconds = wire_total;
  result.gate_seconds = seconds_since(gate_start) - wire_total;
  StaMetrics::get().wire_seconds.set(result.wire_seconds);
  StaMetrics::get().gate_seconds.set(result.gate_seconds);

  if (result.unsettled_sinks > 0) {
    std::size_t tainted = 0;
    for (const std::uint8_t s : result.arrival_settled) tainted += s == 0;
    GNNTRANS_LOG_WARN(
        "sta",
        "%zu wire sink(s) arrived unsettled; %zu downstream arrival(s) are "
        "optimistic lower bounds (flagged in arrival_settled)",
        result.unsettled_sinks, tainted);
  }

  // Backward pass: required times in reverse level order, seeded by the setup
  // constraint at every endpoint (instances that drive nothing keep it). The
  // per-sink expression and its evaluation order are the contract the
  // incremental engine reproduces bitwise, so do not reassociate it.
  result.required.assign(n, config.required_time);
  for (std::size_t k = order.size(); k-- > 0;) {
    const InstanceId v = order[k];
    const std::uint32_t net_idx = design.driven_net[v];
    if (net_idx == Design::kNoNet) continue;
    const DesignNet& net = design.nets[net_idx];
    const std::vector<StaWireTable::Sink>& sinks = table.nets[net_idx];
    double req = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < net.loads.size() && s < sinks.size(); ++s) {
      const InstanceId load = net.loads[s];
      req = std::min(req, (result.required[load] - result.gate_delay[load]) -
                              sinks[s].delay);
    }
    result.required[v] = req;
  }
  result.slack.resize(n);
  for (std::size_t v = 0; v < n; ++v)
    result.slack[v] = result.required[v] - result.arrival[v];

  result.endpoint_arrival.reserve(design.endpoints.size());
  result.endpoint_slack.reserve(design.endpoints.size());
  for (InstanceId e : design.endpoints) {
    result.endpoint_arrival.push_back(result.arrival[e]);
    result.endpoint_slack.push_back(result.slack[e]);
  }
  if (wire_table) *wire_table = std::move(table);
  return result;
}

double count_netlist_paths(const Design& design) {
  const std::size_t n = design.instances.size();
  std::vector<double> dp(n, 0.0);
  for (InstanceId s : design.startpoints) dp[s] = 1.0;

  std::vector<InstanceId> order(n);
  std::iota(order.begin(), order.end(), InstanceId{0});
  std::stable_sort(order.begin(), order.end(), [&](InstanceId a, InstanceId b) {
    return design.instances[a].level < design.instances[b].level;
  });

  for (InstanceId v : order) {
    const std::uint32_t net_idx = design.driven_net[v];
    if (net_idx == Design::kNoNet || dp[v] == 0.0) continue;
    for (InstanceId load : design.nets[net_idx].loads) dp[load] += dp[v];
  }

  double total = 0.0;
  for (InstanceId e : design.endpoints) total += dp[e];
  return total;
}

}  // namespace gnntrans::netlist
