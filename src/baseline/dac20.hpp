/// \file dac20.hpp
/// The DAC'20 [5] baseline estimator: loop-breaking + hand-crafted net
/// structure features + gradient-boosted trees for slew and delay.
///
/// Faithful to the failure mode the paper exploits: all features are computed
/// on the loop-broken spanning tree, so non-tree conduction is invisible to
/// the model.
#pragma once

#include <iosfwd>
#include <vector>

#include "baseline/gbdt.hpp"
#include "features/dataset.hpp"
#include "rcnet/rcnet.hpp"

namespace gnntrans::baseline {

/// Per-path prediction in seconds.
struct PathTiming {
  rcnet::NodeId sink = 0;
  double slew = 0.0;
  double delay = 0.0;
};

/// Number of hand-crafted per-path features.
inline constexpr std::size_t kDac20FeatureCount = 17;

/// Builds the DAC'20 flat feature vector for every path of \p net (features
/// computed after loop-breaking). Returns one row per sink, sink order.
[[nodiscard]] std::vector<std::vector<float>> dac20_features(
    const rcnet::RcNet& net, const features::NetContext& context);

/// The trained baseline.
class Dac20Estimator {
 public:
  /// Fits the slew and delay GBDTs on labeled records.
  void train(const std::vector<features::WireRecord>& records,
             const GbdtConfig& config = {});

  /// Predicts per-path wire timing (seconds) for one net.
  [[nodiscard]] std::vector<PathTiming> estimate(
      const rcnet::RcNet& net, const features::NetContext& context) const;

  void save(std::ostream& out) const;
  void load(std::istream& in);

  [[nodiscard]] bool trained() const noexcept { return trained_; }

 private:
  GbdtRegressor slew_model_;
  GbdtRegressor delay_model_;
  bool trained_ = false;
};

}  // namespace gnntrans::baseline
