// Tests for the analytical (Elmore/D2M/moments) and golden transient engines.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "rcnet/generate.hpp"
#include "rcnet/paths.hpp"
#include "sim/golden.hpp"
#include "sim/moments.hpp"
#include "sim/transient.hpp"
#include "sim/wire_analysis.hpp"

namespace {

using namespace gnntrans;
using rcnet::RcNet;

RcNet chain(std::size_t n, double r_ohm, double c_farad) {
  RcNet net;
  net.name = "chain";
  net.source = 0;
  net.sinks = {static_cast<rcnet::NodeId>(n - 1)};
  net.ground_cap.assign(n, c_farad);
  for (rcnet::NodeId v = 1; v < n; ++v)
    net.resistors.push_back({static_cast<rcnet::NodeId>(v - 1), v, r_ohm});
  return net;
}

TEST(Moments, SingleStageElmoreIsRC) {
  // One R into one C: Elmore delay at node 1 = R*C exactly.
  const RcNet net = chain(2, 100.0, 10e-15);
  const sim::Moments m = sim::compute_moments(net);
  EXPECT_NEAR(m.m1[1], 100.0 * 10e-15, 1e-18);
  EXPECT_DOUBLE_EQ(m.m1[0], 0.0);  // source
}

TEST(Moments, ChainElmoreMatchesClosedForm) {
  // Elmore at end of n-stage chain: sum_k R*(n-k)*C with uniform R,C.
  const std::size_t n = 6;
  const double r = 50.0, c = 2e-15;
  const RcNet net = chain(n, r, c);
  const sim::Moments m = sim::compute_moments(net);
  double expected = 0.0;
  for (std::size_t k = 1; k < n; ++k)
    expected += r * static_cast<double>(n - k) * c;
  EXPECT_NEAR(m.m1[n - 1], expected, expected * 1e-9);
}

TEST(Moments, SecondMomentPositiveOnChain) {
  const RcNet net = chain(5, 50.0, 2e-15);
  const sim::Moments m = sim::compute_moments(net);
  for (std::size_t v = 1; v < net.node_count(); ++v) {
    EXPECT_GT(m.m2[v], 0.0);
    EXPECT_GT(m.m3[v], 0.0);
  }
}

class TreeVsMnaSeeded : public ::testing::TestWithParam<int> {};

TEST_P(TreeVsMnaSeeded, TreeTraversalElmoreEqualsMnaMoment) {
  std::mt19937_64 rng(GetParam());
  rcnet::NetGenConfig cfg;
  cfg.non_tree_fraction = 0.0;
  const RcNet net = rcnet::generate_net(cfg, rng, "t");
  ASSERT_TRUE(net.is_tree());
  const std::vector<double> tree_delay = sim::elmore_tree(net);
  const sim::Moments m = sim::compute_moments(net);
  for (std::size_t v = 0; v < net.node_count(); ++v)
    EXPECT_NEAR(tree_delay[v], m.m1[v], 1e-9 * (m.m1[v] + 1e-15)) << "node " << v;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeVsMnaSeeded, ::testing::Range(1, 13));

TEST(D2m, BoundedByElmoreOnRandomNets) {
  // D2M is a provable lower-ish estimate; on RC nets it never exceeds Elmore.
  std::mt19937_64 rng(5);
  rcnet::NetGenConfig cfg;
  for (int i = 0; i < 15; ++i) {
    const RcNet net = rcnet::generate_net(cfg, rng, "n");
    const sim::Moments m = sim::compute_moments(net);
    const std::vector<double> d2m = sim::d2m_from_moments(m);
    for (rcnet::NodeId s : net.sinks) {
      EXPECT_GT(d2m[s], 0.0);
      EXPECT_LE(d2m[s], m.m1[s] * 1.0000001);
    }
  }
}

TEST(Moments, LoopReducesElmoreDelay) {
  // Adding a parallel resistor can only speed the net up.
  const RcNet tree = chain(6, 100.0, 5e-15);
  RcNet looped = tree;
  looped.resistors.push_back({0, 5, 300.0});
  const sim::Moments m_tree = sim::compute_moments(tree);
  const sim::Moments m_loop = sim::compute_moments(looped);
  EXPECT_LT(m_loop.m1[5], m_tree.m1[5]);
}

TEST(Moments, AddedCapIncreasesDelayMonotonically) {
  RcNet net = chain(5, 80.0, 3e-15);
  const double base = sim::compute_moments(net).m1[4];
  net.ground_cap[2] *= 2.0;
  EXPECT_GT(sim::compute_moments(net).m1[4], base);
}

TEST(Moments, AddedSeriesResistanceIncreasesDelay) {
  RcNet net = chain(5, 80.0, 3e-15);
  const double base = sim::compute_moments(net).m1[4];
  net.resistors[1].ohms *= 3.0;
  EXPECT_GT(sim::compute_moments(net).m1[4], base);
}

// ---- Transient engine ----

sim::TransientConfig quiet_config() {
  sim::TransientConfig cfg;
  cfg.si.enabled = false;
  cfg.steps = 2000;
  return cfg;
}

TEST(Transient, SinglePoleMatchesAnalyticStepResponse) {
  // Driver R feeds one cap (no wire R): the sink *is* the source node here,
  // so verify against the analytic low-pass ramp response at the probe.
  RcNet net;
  net.name = "pole";
  net.source = 0;
  net.sinks = {1};
  net.ground_cap = {0.1e-15, 20e-15};
  net.resistors = {{0, 1, 1.0}};  // negligible wire R
  sim::TransientConfig cfg = quiet_config();
  cfg.driver_resistance = 500.0;
  const double tau = 500.0 * 20.1e-15;

  const double slew_in = 1e-12;  // near-step input
  const auto [result, wave] = sim::simulate_with_probe(net, cfg, slew_in, 1);
  ASSERT_TRUE(result.sinks[0].settled);
  // Analytic 50% time of first-order step response: tau * ln 2 (plus the tiny
  // ramp offset). Compare total source->sink t50 to ln2*tau within 5%.
  const double t50_total = result.source_t50 + result.sinks[0].delay;
  EXPECT_NEAR(t50_total, tau * std::log(2.0) + slew_in / 0.6 / 2.0,
              0.05 * tau);
}

TEST(Transient, DelayBracketedByD2mAndElmore) {
  // Classic result: for RC nets, 50% delay lies near [D2M, Elmore].
  std::mt19937_64 rng(11);
  rcnet::NetGenConfig cfg;
  cfg.coupling_prob = 0.0;
  const sim::TransientConfig tc = quiet_config();
  for (int i = 0; i < 10; ++i) {
    const RcNet net = rcnet::generate_net(cfg, rng, "n");
    const sim::Moments m = sim::compute_moments(net);
    const std::vector<double> d2m = sim::d2m_from_moments(m);
    const sim::TransientResult res = sim::simulate(net, tc, 2e-11, 50.0);
    for (const sim::SinkTiming& st : res.sinks) {
      ASSERT_TRUE(st.settled);
      EXPECT_GT(st.delay, 0.45 * d2m[st.sink]);
      EXPECT_LT(st.delay, 1.35 * m.m1[st.sink] + 2e-12);
    }
  }
}

TEST(Transient, SlowerInputSlewIncreasesSinkSlew) {
  const RcNet net = chain(8, 60.0, 4e-15);
  const sim::TransientConfig cfg = quiet_config();
  const auto fast = sim::simulate(net, cfg, 1e-11);
  const auto slow = sim::simulate(net, cfg, 1.2e-10);
  ASSERT_TRUE(fast.sinks[0].settled && slow.sinks[0].settled);
  EXPECT_GT(slow.sinks[0].slew, fast.sinks[0].slew);
  EXPECT_GT(slow.source_slew, fast.source_slew);
}

TEST(Transient, StrongerDriverReducesSourceSlew) {
  const RcNet net = chain(8, 60.0, 4e-15);
  const sim::TransientConfig cfg = quiet_config();
  const auto weak = sim::simulate(net, cfg, 4e-11, 800.0);
  const auto strong = sim::simulate(net, cfg, 4e-11, 80.0);
  EXPECT_GT(weak.source_slew, strong.source_slew);
}

TEST(Transient, FartherSinkHasLargerDelay) {
  RcNet net = chain(10, 70.0, 3e-15);
  net.sinks = {3, 9};
  const auto res = sim::simulate(net, quiet_config(), 3e-11);
  ASSERT_EQ(res.sinks.size(), 2u);
  EXPECT_LT(res.sinks[0].delay, res.sinks[1].delay);
}

TEST(Transient, CouplingNoiseChangesTiming) {
  std::mt19937_64 rng(13);
  rcnet::NetGenConfig gen;
  gen.coupling_prob = 1.0;
  gen.coupling_density = 0.4;
  const RcNet net = rcnet::generate_net(gen, rng, "si");
  ASSERT_FALSE(net.couplings.empty());

  sim::TransientConfig si_on = quiet_config();
  si_on.si.enabled = true;
  const auto with_si = sim::simulate(net, si_on, 3e-11);
  const auto without = sim::simulate(net, quiet_config(), 3e-11);
  // SI must perturb at least one sink measurably (aggressors are active).
  double max_shift = 0.0;
  for (std::size_t s = 0; s < with_si.sinks.size(); ++s)
    max_shift = std::max(max_shift,
                         std::abs(with_si.sinks[s].delay - without.sinks[s].delay));
  EXPECT_GT(max_shift, 1e-14);
}

TEST(Transient, SiIsDeterministicPerSeed) {
  std::mt19937_64 rng(14);
  rcnet::NetGenConfig gen;
  gen.coupling_prob = 1.0;
  const RcNet net = rcnet::generate_net(gen, rng, "si");
  sim::TransientConfig cfg = quiet_config();
  cfg.si.enabled = true;
  const auto a = sim::simulate(net, cfg, 3e-11);
  const auto b = sim::simulate(net, cfg, 3e-11);
  for (std::size_t s = 0; s < a.sinks.size(); ++s) {
    EXPECT_DOUBLE_EQ(a.sinks[s].delay, b.sinks[s].delay);
    EXPECT_DOUBLE_EQ(a.sinks[s].slew, b.sinks[s].slew);
  }
}

TEST(Transient, RejectsNonPositiveSlew) {
  const RcNet net = chain(3, 50.0, 2e-15);
  EXPECT_THROW(sim::simulate(net, quiet_config(), 0.0), std::invalid_argument);
}

TEST(WireAnalysis, DownstreamCapAtSourceEqualsTotalCap) {
  std::mt19937_64 rng(15);
  rcnet::NetGenConfig cfg;
  for (int i = 0; i < 8; ++i) {
    const RcNet net = rcnet::generate_net(cfg, rng, "n");
    const sim::WireAnalysis wa = sim::analyze_wire(net);
    const double total = net.total_ground_cap() + net.total_coupling_cap();
    EXPECT_NEAR(wa.downstream_cap[net.source], total, total * 1e-9);
  }
}

TEST(WireAnalysis, StageDelaysSumToPathElmoreOnTree) {
  std::mt19937_64 rng(16);
  rcnet::NetGenConfig cfg;
  cfg.non_tree_fraction = 0.0;
  const RcNet net = rcnet::generate_net(cfg, rng, "n");
  const sim::WireAnalysis wa = sim::analyze_wire(net);
  for (const rcnet::WirePath& path : wa.paths) {
    double sum = 0.0;
    for (rcnet::NodeId v : path.nodes) sum += wa.stage_delay[v];
    EXPECT_NEAR(sum, wa.moments.m1[path.sink], 1e-9 * wa.moments.m1[path.sink]);
  }
}

TEST(GoldenTimer, AccumulatesStats) {
  sim::GoldenTimer timer(quiet_config());
  const RcNet net = chain(5, 50.0, 3e-15);
  timer.time_net(net, 3e-11);
  timer.time_net(net, 3e-11);
  EXPECT_EQ(timer.stats().nets_timed, 2u);
  EXPECT_GT(timer.stats().solver_steps, 0u);
  EXPECT_GT(timer.stats().wall_seconds, 0.0);
  sim::GoldenTimer t2 = timer;
  t2.reset_stats();
  EXPECT_EQ(t2.stats().nets_timed, 0u);
}

}  // namespace
