#include "serve/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <stdexcept>

#include "core/estimate_cache.hpp"
#include "core/fault_injector.hpp"
#include "core/telemetry/flight_recorder.hpp"
#include "core/telemetry/log.hpp"
#include "core/telemetry/metrics.hpp"
#include "core/telemetry/net_io.hpp"
#include "core/telemetry/trace.hpp"

namespace gnntrans::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t) {
  return std::chrono::duration<double>(Clock::now() - t).count();
}

/// gnntrans_net_* observability, registered once (idempotent by name).
struct NetMetrics {
  telemetry::Counter connections = telemetry::MetricsRegistry::global().counter(
      "gnntrans_net_connections_total",
      "Connections accepted by the serving front-end");
  telemetry::Gauge active = telemetry::MetricsRegistry::global().gauge(
      "gnntrans_net_active_connections",
      "Connections currently held open by the serving front-end");
  telemetry::Counter frames = telemetry::MetricsRegistry::global().counter(
      "gnntrans_net_frames_total", "Complete length-prefixed frames read");
  telemetry::Counter requests = telemetry::MetricsRegistry::global().counter(
      "gnntrans_net_requests_total",
      "Timing requests that decoded successfully");
  telemetry::Counter served = telemetry::MetricsRegistry::global().counter(
      "gnntrans_net_served_total",
      "Responses handed to a live connection for delivery");
  telemetry::Counter rejected = telemetry::MetricsRegistry::global().counter(
      "gnntrans_net_rejected_total",
      "Requests answered with a typed reject (all reasons)");
  telemetry::Counter rejected_overload =
      telemetry::MetricsRegistry::global().counter(
          "gnntrans_net_rejected_overload_total",
          "Requests load-shed because the admission queue was full");
  telemetry::Counter rejected_malformed =
      telemetry::MetricsRegistry::global().counter(
          "gnntrans_net_rejected_malformed_total",
          "Frames rejected as malformed (decode failure or injected)");
  telemetry::Counter rejected_deadline =
      telemetry::MetricsRegistry::global().counter(
          "gnntrans_net_rejected_deadline_total",
          "Requests whose own deadline expired while queued");
  telemetry::Counter rejected_shutdown =
      telemetry::MetricsRegistry::global().counter(
          "gnntrans_net_rejected_shutdown_total",
          "Requests rejected because the server was draining");
  telemetry::Counter batches = telemetry::MetricsRegistry::global().counter(
      "gnntrans_net_batches_total",
      "Cross-client coalesced batches served through estimate_batch");
  telemetry::Histogram batch_size = telemetry::MetricsRegistry::global().histogram(
      "gnntrans_net_batch_size",
      {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024},
      "Requests per coalesced batch");
  telemetry::Gauge queue_depth = telemetry::MetricsRegistry::global().gauge(
      "gnntrans_net_queue_depth", "Requests waiting in the admission queue");
  telemetry::Gauge queue_oldest_age = telemetry::MetricsRegistry::global().gauge(
      "gnntrans_net_queue_oldest_age_seconds",
      "Age of the oldest request waiting in the admission queue");
  telemetry::Histogram queue_wait = telemetry::MetricsRegistry::global().histogram(
      "gnntrans_net_queue_wait_seconds",
      telemetry::HistogramData::default_latency_bounds(),
      "Time requests spent queued before their batch started");
  telemetry::Histogram request_seconds =
      telemetry::MetricsRegistry::global().histogram(
          "gnntrans_net_request_seconds",
          telemetry::HistogramData::default_latency_bounds(),
          "Admission-to-delivery latency of served requests");
  // Per-request stage clock (observed for every served request; the stages
  // telescope to request_seconds up to clock-read noise).
  telemetry::Histogram stage_queue = telemetry::MetricsRegistry::global().histogram(
      "gnntrans_net_stage_queue_seconds",
      telemetry::HistogramData::default_latency_bounds(),
      "Stage clock: admission-queue wait before batch formation");
  telemetry::Histogram stage_batch_wait =
      telemetry::MetricsRegistry::global().histogram(
          "gnntrans_net_stage_batch_wait_seconds",
          telemetry::HistogramData::default_latency_bounds(),
          "Stage clock: in-batch wait on peer nets (batch wall minus own "
          "model time)");
  telemetry::Histogram stage_model = telemetry::MetricsRegistry::global().histogram(
      "gnntrans_net_stage_model_seconds",
      telemetry::HistogramData::default_latency_bounds(),
      "Stage clock: this net's featurize+forward+fallback time");
  telemetry::Histogram stage_serialize =
      telemetry::MetricsRegistry::global().histogram(
          "gnntrans_net_stage_serialize_seconds",
          telemetry::HistogramData::default_latency_bounds(),
          "Stage clock: response frame encode");
  telemetry::Histogram stage_write = telemetry::MetricsRegistry::global().histogram(
      "gnntrans_net_stage_write_seconds",
      telemetry::HistogramData::default_latency_bounds(),
      "Stage clock: outbox-ready to socket-write completion");
  telemetry::Counter undeliverable = telemetry::MetricsRegistry::global().counter(
      "gnntrans_net_responses_undeliverable_total",
      "Responses whose connection was gone before delivery");

  static const NetMetrics& get() {
    static const NetMetrics metrics;
    return metrics;
  }
};

void record_flight(const char* what, const char* outcome, const char* detail) {
  telemetry::FlightRecorder& flight = telemetry::FlightRecorder::global();
  if (!flight.enabled()) return;
  telemetry::FlightRecord fr;
  fr.set_net(what);
  fr.set_outcome(outcome);
  fr.set_error(detail);
  flight.record(fr);
}

/// Fault key "req/<id>/<attempt>" peeked straight out of a frame header (the
/// id/attempt fields sit at fixed offsets) so the read-fault decision can be
/// made before — and independent of — a full decode. Falls back to a
/// connection-local key for frames too short to carry a header.
std::string request_key(std::string_view payload, std::uint64_t conn_id,
                        std::uint64_t frame_seq) {
  if (payload.size() >= 20) {
    std::uint64_t id = 0;
    for (int i = 15; i >= 8; --i)
      id = (id << 8) | static_cast<std::uint8_t>(payload[static_cast<std::size_t>(i)]);
    std::uint32_t attempt = 0;
    for (int i = 19; i >= 16; --i)
      attempt = (attempt << 8) |
                static_cast<std::uint8_t>(payload[static_cast<std::size_t>(i)]);
    return "req/" + std::to_string(id) + "/" + std::to_string(attempt);
  }
  return "frame/" + std::to_string(conn_id) + "/" + std::to_string(frame_seq);
}

/// Best-effort id/attempt echo for rejects on payloads that failed to decode.
void peek_ids(std::string_view payload, std::uint64_t* id,
              std::uint32_t* attempt) {
  *id = 0;
  *attempt = 0;
  if (payload.size() < 20) return;
  for (int i = 15; i >= 8; --i)
    *id = (*id << 8) | static_cast<std::uint8_t>(payload[static_cast<std::size_t>(i)]);
  for (int i = 19; i >= 16; --i)
    *attempt = (*attempt << 8) |
               static_cast<std::uint8_t>(payload[static_cast<std::size_t>(i)]);
}

}  // namespace

/// One client connection. The connection thread owns fd reads and all writes;
/// other threads communicate through the outbox + wake pipe. `closing` is the
/// abortive-close flag (fault injection, protocol abuse): the thread exits
/// without flushing the outbox, so the peer observes a dropped connection.
struct NetServer::Connection {
  /// One outbound frame plus its stage-clock context. `ready` stamps outbox
  /// entry (start of the write stage); `admitted` is the request's admission
  /// time (set for served responses, not rejects); `trace` carries the
  /// partially-filled stage breakdown of a head-sampled request for the
  /// connection thread to finalize at write completion.
  struct Outgoing {
    std::string frame;
    std::unique_ptr<telemetry::RequestTrace> trace;
    Clock::time_point admitted{};
    Clock::time_point ready{};
  };

  int fd = -1;
  int wake[2] = {-1, -1};
  std::uint64_t id = 0;
  std::mutex mutex;
  std::deque<Outgoing> outbox;  // guarded by mutex
  bool closing = false;         // guarded by mutex
  std::atomic<bool> done{false};
  std::thread thread;

  ~Connection() {
    for (int* p : {&wake[0], &wake[1]}) {
      if (*p >= 0) ::close(*p);
      *p = -1;
    }
  }

  void wake_up() {
    const char byte = 'w';
    [[maybe_unused]] const ssize_t n = ::write(wake[1], &byte, 1);
  }
};

/// One admitted request waiting for its batch.
struct NetServer::Pending {
  std::shared_ptr<Connection> conn;
  RequestFrame request;
  Clock::time_point enqueued;
  double queue_wait = 0.0;  ///< stamped at batch formation (deadline triage)
};

NetServer::NetServer(const core::WireTimingEstimator& estimator,
                     NetServerConfig config)
    : estimator_(estimator), config_(std::move(config)) {
  config_.threads = std::max<std::size_t>(1, config_.threads);
  config_.batch_max = std::max<std::size_t>(1, config_.batch_max);
  config_.queue_capacity = std::max<std::size_t>(1, config_.queue_capacity);
}

NetServer::~NetServer() { stop(); }

void NetServer::start() {
  if (running()) return;

  std::string error;
  listen_fd_ = telemetry::bind_listener(config_.addr, config_.port,
                                        config_.backlog, &bound_port_, &error);
  if (listen_fd_ < 0) throw std::runtime_error("net server: " + error);
  if (::pipe(wake_pipe_) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("net server: self-pipe failed");
  }

  pool_ = std::make_unique<core::ThreadPool>(config_.threads);
  workspaces_.resize(config_.threads);
  if (config_.enable_autoscale)
    autoscaler_ = std::make_unique<core::PoolAutoscaler>(config_.autoscale);
  if (config_.cache_bytes > 0 && !cache_) {
    core::EstimateCacheConfig cache_config;
    cache_config.capacity_bytes = config_.cache_bytes;
    cache_ = std::make_unique<core::EstimateCache>(cache_config);
  }

  draining_.store(false, std::memory_order_release);
  closing_conns_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  batch_thread_ = std::thread([this] { batch_loop(); });
  GNNTRANS_LOG_INFO("serve", "listening on %s:%u (batch_max %zu, queue %zu)",
                    config_.addr.c_str(), bound_port_, config_.batch_max,
                    config_.queue_capacity);
}

void NetServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;

  // 1. Close admission: new requests get typed kShuttingDown rejects. Taken
  //    under the queue lock so the batcher's exit check cannot race a
  //    just-admitted request into a dead queue.
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    draining_.store(true, std::memory_order_release);
  }

  // 2. Stop accepting.
  const char wake = 'q';
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &wake, 1);
  if (accept_thread_.joinable()) accept_thread_.join();

  // 3. Flush in-flight: the batcher drains the queue (draining_ makes the
  //    flush predicate immediate) and exits once it is empty.
  queue_cv_.notify_all();
  if (batch_thread_.joinable()) batch_thread_.join();

  // 4. Deliver and close: connection threads flush their outboxes, then exit.
  closing_conns_.store(true, std::memory_order_release);
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns.swap(conns_);
  }
  for (const auto& conn : conns) conn->wake_up();
  for (const auto& conn : conns)
    if (conn->thread.joinable()) conn->thread.join();

  for (int* fd : {&listen_fd_, &wake_pipe_[0], &wake_pipe_[1]}) {
    if (*fd >= 0) ::close(*fd);
    *fd = -1;
  }
  record_flight("net_server", "drained", "");
  GNNTRANS_LOG_INFO("serve",
                    "drained: %llu served, %llu rejected, %llu batches",
                    static_cast<unsigned long long>(ledger_.served.load()),
                    static_cast<unsigned long long>(ledger_.rejected_total()),
                    static_cast<unsigned long long>(ledger_.batches.load()));
}

core::InferenceStats NetServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void NetServer::accept_loop() {
  const NetMetrics& metrics = NetMetrics::get();
  core::FaultInjector& faults = core::FaultInjector::global();
  while (running_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents) break;  // self-pipe: stop() requested
    if (!(fds[0].revents & POLLIN)) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const std::uint64_t seq = accept_seq_++;
    ledger_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    metrics.connections.inc();

    if (faults.armed() &&
        faults.should_fail(core::FaultSite::kAccept,
                           "accept/" + std::to_string(seq))) {
      // Injected accept fault: the connection dies before any exchange; the
      // client sees a transport failure and retries on a fresh connection.
      ledger_.faults_accept.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }

    if (active_conns_.load(std::memory_order_acquire) >=
        config_.max_connections) {
      // Connection-level load shed: a typed kOverloaded response (request_id
      // 0 = "about the connection, not a request"), then close. Never a
      // silent refusal.
      ledger_.connections_rejected_overload.fetch_add(1,
                                                      std::memory_order_relaxed);
      metrics.rejected_overload.inc();
      metrics.rejected.inc();
      ResponseFrame reject;
      reject.status = core::ErrorCode::kOverloaded;
      reject.provenance = core::EstimateProvenance::kFailed;
      reject.message = "connection limit reached";
      (void)telemetry::send_all(fd, encode_response(reject),
                                config_.write_timeout_ms);
      ::close(fd);
      record_flight("net_admission", "overloaded", "connection limit");
      continue;
    }

    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->id = seq;
    if (::pipe(conn->wake) < 0) {
      ::close(fd);
      continue;
    }
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    // Response frames are small; without TCP_NODELAY Nagle + delayed ACK can
    // park them for tens of milliseconds.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    active_conns_.fetch_add(1, std::memory_order_acq_rel);
    metrics.active.set(static_cast<double>(active_conns_.load()));
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      conns_.push_back(conn);
    }
    conn->thread = std::thread([this, conn] { connection_loop(conn); });
    reap_finished_connections();
  }
}

void NetServer::reap_finished_connections() {
  std::vector<std::shared_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    auto it = std::partition(
        conns_.begin(), conns_.end(),
        [](const std::shared_ptr<Connection>& c) { return !c->done.load(); });
    finished.assign(it, conns_.end());
    conns_.erase(it, conns_.end());
  }
  for (const auto& conn : finished)
    if (conn->thread.joinable()) conn->thread.join();
}

void NetServer::connection_loop(const std::shared_ptr<Connection>& conn) {
  const NetMetrics& metrics = NetMetrics::get();
  std::string read_buffer;
  Clock::time_point last_byte = Clock::now();
  bool abortive = false;

  // Write-completion bookkeeping, run after a successful send. The write
  // stage covers outbox-ready to send completion; served responses (admitted
  // stamp set) observe it into the stage histogram, and head-sampled requests
  // additionally close their stage clock: wall time from admission, a "write"
  // span on the request's flow lane, the request_seconds p99 exemplar, a
  // retained /tracez record, and — when slow or degraded — a pinned flight
  // entry whose error field carries the trace id.
  const auto finish_delivery = [&metrics](Connection::Outgoing& msg) {
    const double write_s = seconds_since(msg.ready);
    if (msg.admitted != Clock::time_point{}) metrics.stage_write.observe(write_s);
    if (!msg.trace) return;
    telemetry::RequestTrace& rt = *msg.trace;
    rt.write_seconds = write_s;
    rt.wall_seconds = seconds_since(msg.admitted);
    telemetry::TraceRecorder& recorder = telemetry::TraceRecorder::global();
    if (recorder.enabled()) {
      const std::int64_t now_ns = recorder.now_ns();
      recorder.record_event(
          "write", "request",
          now_ns - static_cast<std::int64_t>(write_s * 1e9), now_ns,
          telemetry::TracePhase::kComplete, rt.trace_id);
    }
    metrics.request_seconds.annotate_exemplar(rt.wall_seconds, rt.trace_id,
                                              rt.net);
    telemetry::RequestTraceStore::global().record(rt);
    if (rt.slow || rt.degraded) {
      telemetry::FlightRecorder& flight = telemetry::FlightRecorder::global();
      if (flight.enabled()) {
        telemetry::FlightRecord fr;
        fr.set_net(rt.net);
        fr.set_outcome("request");
        char detail[24];
        std::snprintf(detail, sizeof(detail), "t:%016llx",
                      static_cast<unsigned long long>(rt.trace_id));
        fr.set_error(detail);
        fr.featurize_us = static_cast<float>(rt.featurize_seconds * 1e6);
        fr.forward_us = static_cast<float>(rt.forward_seconds * 1e6);
        fr.fallback_us = static_cast<float>(rt.fallback_seconds * 1e6);
        fr.total_us = static_cast<float>(rt.wall_seconds * 1e6);
        fr.slow = rt.slow ? 1 : 0;
        fr.degraded = rt.degraded ? 1 : 0;
        fr.pinned = 1;
        flight.record(fr);
      }
    }
  };

  for (;;) {
    // Deliver everything queued for this client first.
    std::deque<Connection::Outgoing> out;
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      if (conn->closing) {
        abortive = true;  // fault-injected / protocol-abuse close: drop outbox
        break;
      }
      out.swap(conn->outbox);
    }
    bool write_failed = false;
    for (Connection::Outgoing& msg : out) {
      // send_all counts the failure in gnntrans_obs_send_failures_total; a
      // slow or gone client costs at most write_timeout_ms here.
      if (!telemetry::send_all(conn->fd, msg.frame, config_.write_timeout_ms)) {
        ledger_.undeliverable.fetch_add(1, std::memory_order_relaxed);
        metrics.undeliverable.inc();
        write_failed = true;
        break;
      }
      finish_delivery(msg);
    }
    if (write_failed) break;

    if (closing_conns_.load(std::memory_order_acquire)) {
      // Graceful drain: exit once the outbox is verifiably empty (the batcher
      // has already been joined, so nothing new can arrive from it).
      std::lock_guard<std::mutex> lock(conn->mutex);
      if (conn->outbox.empty()) break;
      continue;
    }

    pollfd fds[2] = {{conn->fd, POLLIN, 0}, {conn->wake[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, 100);
    if (ready < 0 && errno != EINTR) break;
    if (fds[1].revents) {
      char drain[16];
      [[maybe_unused]] const ssize_t n =
          ::read(conn->wake[0], drain, sizeof(drain));
    }
    if (fds[0].revents & POLLIN) {
      char buf[4096];
      const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
      if (n == 0) break;  // peer closed (possibly mid-frame): clean close
      if (n < 0 && errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK)
        break;
      if (n > 0) {
        read_buffer.append(buf, static_cast<std::size_t>(n));
        last_byte = Clock::now();
        bool close_conn = false;
        for (;;) {
          std::string payload;
          const FrameStatus fs =
              try_extract_frame(read_buffer, &payload, config_.max_frame_bytes);
          if (fs == FrameStatus::kNeedMore) break;
          if (fs == FrameStatus::kOversize) {
            // The stream cannot be resynchronized past a hostile length:
            // typed reject, then close.
            ledger_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
            metrics.rejected_malformed.inc();
            metrics.rejected.inc();
            send_reject(conn, 0, 0, core::ErrorCode::kMalformedFrame,
                        "declared frame length exceeds limit");
            close_conn = true;
            break;
          }
          if (!handle_frame(conn, std::move(payload))) {
            close_conn = true;
            break;
          }
        }
        if (close_conn) {
          // Flush the reject (if any) before closing so the client sees a
          // typed answer, not just a reset.
          std::deque<Connection::Outgoing> tail;
          {
            std::lock_guard<std::mutex> lock(conn->mutex);
            tail.swap(conn->outbox);
          }
          for (Connection::Outgoing& msg : tail)
            if (telemetry::send_all(conn->fd, msg.frame,
                                    config_.write_timeout_ms))
              finish_delivery(msg);
          break;
        }
      }
    }
    // Half-open guard: a partial frame that stopped making progress.
    if (!read_buffer.empty() &&
        seconds_since(last_byte) * 1e3 >
            static_cast<double>(config_.read_timeout_ms)) {
      GNNTRANS_LOG_WARN("serve",
                        "closing half-open connection %llu (%zu buffered "
                        "bytes, no progress in %d ms)",
                        static_cast<unsigned long long>(conn->id),
                        read_buffer.size(), config_.read_timeout_ms);
      break;
    }
  }

  {
    // Mark closing *before* tearing the socket down so the batcher counts
    // further deliveries as undeliverable instead of queuing into the void.
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->closing = true;
    if (abortive) conn->outbox.clear();
  }
  ::shutdown(conn->fd, SHUT_RDWR);
  ::close(conn->fd);
  conn->fd = -1;
  active_conns_.fetch_sub(1, std::memory_order_acq_rel);
  metrics.active.set(static_cast<double>(active_conns_.load()));
  conn->done.store(true, std::memory_order_release);
}

bool NetServer::handle_frame(const std::shared_ptr<Connection>& conn,
                             std::string payload) {
  const NetMetrics& metrics = NetMetrics::get();
  core::FaultInjector& faults = core::FaultInjector::global();
  ledger_.frames.fetch_add(1, std::memory_order_relaxed);
  metrics.frames.inc();

  static thread_local std::uint64_t frame_seq = 0;
  const std::string key = request_key(payload, conn->id, frame_seq++);
  if (faults.armed() &&
      faults.should_fail(core::FaultSite::kNetRead, key)) {
    // Injected torn read: pretend the frame never arrived intact and drop the
    // connection — the client observes a transport failure and retries.
    ledger_.faults_read.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  RequestFrame request;
  if (core::Status status = decode_request(payload, &request); !status.ok()) {
    // Framing is intact (the length prefix was honored), so the connection
    // survives a garbage payload: typed reject, keep reading.
    ledger_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
    metrics.rejected_malformed.inc();
    metrics.rejected.inc();
    std::uint64_t id = 0;
    std::uint32_t attempt = 0;
    peek_ids(payload, &id, &attempt);
    send_reject(conn, id, attempt, core::ErrorCode::kMalformedFrame,
                status.message());
    return true;
  }
  ledger_.requests_decoded.fetch_add(1, std::memory_order_relaxed);
  metrics.requests.inc();

  // Flow step on the request's async lane: client 's' → this 't' →
  // batch/model spans → client 'f' renders as one arrowed lane in the Chrome
  // trace viewer.
  if (request.trace.sampled)
    telemetry::TraceRecorder::global().record_flow(
        telemetry::TracePhase::kFlowStep, "server_admit", "request",
        request.trace.trace_id);

  if (faults.armed() &&
      faults.should_fail(core::FaultSite::kNetDecode, key)) {
    // Injected decode fault: typed reject, connection stays healthy.
    ledger_.faults_decode.fetch_add(1, std::memory_order_relaxed);
    ledger_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
    metrics.rejected_malformed.inc();
    metrics.rejected.inc();
    send_reject(conn, request.request_id, request.attempt,
                core::ErrorCode::kMalformedFrame, "injected decode fault");
    return true;
  }

  // Admission. Under the queue lock so draining / capacity decisions are
  // exact (never a request admitted into a queue nobody will drain).
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (draining_.load(std::memory_order_acquire)) {
      ledger_.rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
      metrics.rejected_shutdown.inc();
      metrics.rejected.inc();
      send_reject(conn, request.request_id, request.attempt,
                  core::ErrorCode::kShuttingDown, "server draining");
      return true;
    }
    if (queue_.size() >= config_.queue_capacity) {
      ledger_.rejected_overload.fetch_add(1, std::memory_order_relaxed);
      metrics.rejected_overload.inc();
      metrics.rejected.inc();
      send_reject(conn, request.request_id, request.attempt,
                  core::ErrorCode::kOverloaded, "admission queue full");
      record_flight("net_admission", "overloaded", "queue full");
      return true;
    }
    queue_.push_back(Pending{conn, std::move(request), Clock::now()});
    metrics.queue_depth.set(static_cast<double>(queue_.size()));
  }
  queue_cv_.notify_one();
  return true;
}

void NetServer::send_reject(const std::shared_ptr<Connection>& conn,
                            std::uint64_t request_id, std::uint32_t attempt,
                            core::ErrorCode code, const std::string& message) {
  ResponseFrame reject;
  reject.request_id = request_id;
  reject.attempt = attempt;
  reject.status = code;
  reject.provenance = core::EstimateProvenance::kFailed;
  reject.message = message;
  (void)enqueue_response(conn, encode_response(reject));
}

bool NetServer::enqueue_response(
    const std::shared_ptr<Connection>& conn, std::string frame,
    std::unique_ptr<telemetry::RequestTrace> trace,
    std::chrono::steady_clock::time_point admitted) {
  Connection::Outgoing msg;
  msg.frame = std::move(frame);
  msg.trace = std::move(trace);
  msg.admitted = admitted;
  msg.ready = Clock::now();
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->closing) return false;
    conn->outbox.push_back(std::move(msg));
  }
  conn->wake_up();
  return true;
}

void NetServer::batch_loop() {
  const NetMetrics& metrics = NetMetrics::get();
  core::FaultInjector& faults = core::FaultInjector::global();

  for (;;) {
    std::vector<Pending> batch;
    std::size_t depth_behind = 0;
    double oldest_behind = 0.0;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      // Size-or-age coalescing (the COMM_MIN/COMM_DELAY pair): flush a full
      // batch immediately, otherwise wake exactly when the oldest request
      // hits the flush age. The deadline is re-armed on every wakeup, so a
      // request landing in an idle queue flushes flush_age later — not up to
      // a whole liveness tick later (the 100 ms idle wait is a backstop
      // only, every arrival notifies the cv).
      for (;;) {
        if (draining_.load(std::memory_order_acquire) ||
            queue_.size() >= config_.batch_max)
          break;
        if (queue_.empty()) {
          metrics.queue_oldest_age.set(0.0);
          queue_cv_.wait_for(lock, std::chrono::milliseconds(100));
          continue;
        }
        const Clock::time_point flush_at =
            queue_.front().enqueued +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(config_.flush_age_seconds));
        if (Clock::now() >= flush_at) break;
        metrics.queue_oldest_age.set(seconds_since(queue_.front().enqueued));
        queue_cv_.wait_until(lock, flush_at);
      }
      if (queue_.empty()) {
        // Only reachable when draining: the queue is verifiably flushed.
        metrics.queue_oldest_age.set(0.0);
        break;
      }
      metrics.queue_oldest_age.set(seconds_since(queue_.front().enqueued));
      const std::size_t take = std::min(queue_.size(), config_.batch_max);
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      depth_behind = queue_.size();
      oldest_behind =
          queue_.empty() ? 0.0 : seconds_since(queue_.front().enqueued);
      metrics.queue_depth.set(static_cast<double>(depth_behind));
      metrics.queue_oldest_age.set(oldest_behind);
    }

    // Per-request deadline triage: a request whose budget is already spent
    // gets a typed reject now instead of wasting a batch slot.
    const Clock::time_point batch_start = Clock::now();
    std::vector<Pending> kept;
    kept.reserve(batch.size());
    double tightest_remaining = 0.0;  // 0 = no deadline in this batch
    for (Pending& pending : batch) {
      const double waited = std::chrono::duration<double>(
                                batch_start - pending.enqueued)
                                .count();
      metrics.queue_wait.observe(waited);
      metrics.stage_queue.observe(waited);
      pending.queue_wait = waited;
      if (pending.request.trace.sampled) {
        // Retrospective "queue" span: begin reconstructed from the wait so
        // the span abuts batch formation exactly.
        telemetry::TraceRecorder& recorder = telemetry::TraceRecorder::global();
        if (recorder.enabled()) {
          const std::int64_t now_ns = recorder.now_ns();
          recorder.record_event(
              "queue", "request",
              now_ns - static_cast<std::int64_t>(waited * 1e9), now_ns,
              telemetry::TracePhase::kComplete, pending.request.trace.trace_id);
        }
      }
      if (pending.request.deadline_us > 0) {
        const double remaining =
            static_cast<double>(pending.request.deadline_us) * 1e-6 - waited;
        if (remaining <= 0.0) {
          ledger_.rejected_deadline.fetch_add(1, std::memory_order_relaxed);
          metrics.rejected_deadline.inc();
          metrics.rejected.inc();
          send_reject(pending.conn, pending.request.request_id,
                      pending.request.attempt,
                      core::ErrorCode::kDeadlineExceeded,
                      "deadline expired while queued");
          continue;
        }
        if (tightest_remaining == 0.0 || remaining < tightest_remaining)
          tightest_remaining = remaining;
      }
      kept.push_back(std::move(pending));
    }
    if (kept.empty()) continue;

    // Queue-aware autoscaling: backlog joins the demand signal, and an aging
    // queue overrides grow hysteresis. Pool and workspaces resize in
    // lockstep, exactly like EstimatorWireSource.
    if (autoscaler_) {
      const core::AutoscaleDecision decision = autoscaler_->decide(
          kept.size(), pool_->size(),
          core::QueueSignal{depth_behind, oldest_behind});
      if (decision.resized()) {
        pool_->resize(decision.target);
        workspaces_.resize(pool_->size());
      }
    }

    std::vector<core::NetBatchItem> items;
    items.reserve(kept.size());
    std::vector<telemetry::TraceContext> traces;
    traces.reserve(kept.size());
    for (const Pending& pending : kept) {
      items.push_back({&pending.request.net, &pending.request.context});
      traces.push_back(pending.request.trace);
    }

    core::BatchOptions options = config_.batch;
    options.pool = pool_.get();
    options.workspaces = &workspaces_;
    options.cache = cache_.get();  // content-addressed memo (cache_bytes)
    options.traces = &traces;
    // The batch inherits the tightest per-request budget: estimate_batch's
    // deadline is relative to its own start, which is (to within triage
    // microseconds) the remaining budget computed above.
    options.deadline_seconds = tightest_remaining;
    std::vector<core::NetOutcome> outcomes;
    options.outcomes = &outcomes;

    core::InferenceStats batch_stats;
    const std::vector<std::vector<core::PathEstimate>> results =
        estimator_.estimate_batch(items, options, &batch_stats);
    ledger_.batches.fetch_add(1, std::memory_order_relaxed);
    metrics.batches.inc();
    metrics.batch_size.observe(static_cast<double>(kept.size()));
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.merge(batch_stats);
    }
    if (autoscaler_) autoscaler_->observe(batch_stats);

    for (std::size_t i = 0; i < kept.size(); ++i) {
      const Pending& pending = kept[i];
      const std::string key = "req/" + std::to_string(pending.request.request_id) +
                              "/" + std::to_string(pending.request.attempt);
      if (faults.armed() &&
          faults.should_fail(core::FaultSite::kNetWrite, key)) {
        // Injected failed write: the connection dies with the response
        // undelivered; the client observes a transport failure and retries.
        ledger_.faults_write.fetch_add(1, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(pending.conn->mutex);
          pending.conn->closing = true;
        }
        pending.conn->wake_up();
        continue;
      }
      // Stage clock: batch wall minus this net's own model time is the wait
      // on peer nets; the split telescopes (queue + batch_wait + model +
      // serialize + write ≈ wall) because adjacent stage boundaries share
      // clock reads.
      const double batch_elapsed =
          std::chrono::duration<double>(Clock::now() - batch_start).count();
      const double batch_wait =
          std::max(0.0, batch_elapsed - outcomes[i].net_seconds);
      ResponseFrame response;
      response.request_id = pending.request.request_id;
      response.attempt = pending.request.attempt;
      response.status = outcomes[i].error;
      response.provenance = outcomes[i].provenance;
      response.message = outcomes[i].message;
      response.paths = results[i];
      const Clock::time_point encode_start = Clock::now();
      std::string frame = encode_response(response);
      const double serialize = seconds_since(encode_start);
      metrics.stage_batch_wait.observe(batch_wait);
      metrics.stage_model.observe(outcomes[i].net_seconds);
      metrics.stage_serialize.observe(serialize);

      std::unique_ptr<telemetry::RequestTrace> trace;
      if (pending.request.trace.sampled) {
        metrics.stage_model.annotate_exemplar(outcomes[i].net_seconds,
                                              pending.request.trace.trace_id,
                                              pending.request.net.name);
        trace = std::make_unique<telemetry::RequestTrace>();
        trace->trace_id = pending.request.trace.trace_id;
        trace->request_id = pending.request.request_id;
        trace->attempt = pending.request.attempt;
        trace->batch_size = static_cast<std::uint32_t>(kept.size());
        trace->set_net(pending.request.net.name);
        trace->set_provenance(core::to_string(outcomes[i].provenance));
        trace->queue_seconds = pending.queue_wait;
        trace->batch_wait_seconds = batch_wait;
        trace->model_seconds = outcomes[i].net_seconds;
        trace->featurize_seconds = outcomes[i].featurize_seconds;
        trace->forward_seconds = outcomes[i].forward_seconds;
        trace->fallback_seconds = outcomes[i].fallback_seconds;
        trace->serialize_seconds = serialize;
        trace->slow = outcomes[i].slow;
        trace->degraded =
            outcomes[i].provenance != core::EstimateProvenance::kModel;
      }
      if (enqueue_response(pending.conn, std::move(frame), std::move(trace),
                           pending.enqueued)) {
        ledger_.served.fetch_add(1, std::memory_order_relaxed);
        metrics.served.inc();
        metrics.request_seconds.observe(seconds_since(pending.enqueued));
      } else {
        ledger_.undeliverable.fetch_add(1, std::memory_order_relaxed);
        metrics.undeliverable.inc();
      }
    }
  }
}

}  // namespace gnntrans::serve
