#include "cell/library.hpp"

#include <cmath>

namespace gnntrans::cell {

const char* to_string(CellFunction fn) {
  switch (fn) {
    case CellFunction::kInv: return "INV";
    case CellFunction::kBuf: return "BUF";
    case CellFunction::kNand2: return "NAND2";
    case CellFunction::kNor2: return "NOR2";
    case CellFunction::kAnd2: return "AND2";
    case CellFunction::kOr2: return "OR2";
    case CellFunction::kXor2: return "XOR2";
    case CellFunction::kAoi21: return "AOI21";
    case CellFunction::kMux2: return "MUX2";
    case CellFunction::kDff: return "DFF";
  }
  return "?";
}

bool is_sequential(CellFunction fn) noexcept { return fn == CellFunction::kDff; }

std::uint32_t input_count(CellFunction fn) noexcept {
  switch (fn) {
    case CellFunction::kInv:
    case CellFunction::kBuf:
    case CellFunction::kDff:
      return 1;
    case CellFunction::kNand2:
    case CellFunction::kNor2:
    case CellFunction::kAnd2:
    case CellFunction::kOr2:
    case CellFunction::kXor2:
      return 2;
    case CellFunction::kAoi21:
    case CellFunction::kMux2:
      return 3;
  }
  return 1;
}

namespace {

/// Per-function complexity factor scaling intrinsic delay and drive R.
double complexity(CellFunction fn) {
  switch (fn) {
    case CellFunction::kInv: return 1.0;
    case CellFunction::kBuf: return 1.4;
    case CellFunction::kNand2: return 1.3;
    case CellFunction::kNor2: return 1.5;
    case CellFunction::kAnd2: return 1.6;
    case CellFunction::kOr2: return 1.7;
    case CellFunction::kXor2: return 2.2;
    case CellFunction::kAoi21: return 1.9;
    case CellFunction::kMux2: return 2.0;
    case CellFunction::kDff: return 2.6;
  }
  return 1.0;
}

Cell make_cell(CellFunction fn, std::uint32_t drive) {
  Cell c;
  c.function = fn;
  c.drive_strength = drive;
  c.name = std::string(to_string(fn)) + "_X" + std::to_string(drive);

  const double comp = complexity(fn);
  // Base drive resistance of an X1 inverter; stronger drives scale it down,
  // complex functions scale it up (stacked transistors). Sized so that on
  // typical nets the *wire* RC, not the driver, dominates slew degradation —
  // the regime sign-off wire timing actually targets.
  constexpr double kBaseDriveRes = 200.0;  // ohms
  c.drive_resistance = kBaseDriveRes * comp / static_cast<double>(drive);
  // Input pin cap grows with drive strength (wider input transistors).
  c.input_cap = 0.9e-15 * comp * (0.6 + 0.4 * static_cast<double>(drive));

  const double t_int = 4.0e-12 * comp;  // intrinsic delay
  const double r_eff = c.drive_resistance;

  // Physically-shaped NLDM surfaces. The sqrt cross-term puts genuine
  // curvature into the table so interpolation is actually exercised.
  auto delay_fn = [t_int, r_eff](double slew, double cap) {
    return t_int + 0.69 * r_eff * cap + 0.18 * slew +
           0.10 * std::sqrt(slew * 0.69 * r_eff * cap);
  };
  auto slew_fn = [r_eff](double slew, double cap) {
    const double rc = 1.1 * r_eff * cap;
    return std::sqrt(rc * rc + 0.12 * slew * slew) + 2.0e-12;
  };

  const std::vector<double> slew_axis = {5e-12,  10e-12, 20e-12, 40e-12,
                                         80e-12, 160e-12, 320e-12};
  const std::vector<double> cap_axis = {0.5e-15, 1e-15, 2e-15, 5e-15,
                                        10e-15,  20e-15, 50e-15};
  c.arc.delay = NldmTable::characterize(slew_axis, cap_axis, delay_fn);
  c.arc.output_slew = NldmTable::characterize(slew_axis, cap_axis, slew_fn);
  return c;
}

}  // namespace

CellLibrary CellLibrary::make_default() {
  CellLibrary lib;
  const struct {
    CellFunction fn;
    std::vector<std::uint32_t> drives;
  } plan[] = {
      {CellFunction::kInv, {1, 2, 4, 8}},  {CellFunction::kBuf, {1, 2, 4, 8}},
      {CellFunction::kNand2, {1, 2, 4}},   {CellFunction::kNor2, {1, 2, 4}},
      {CellFunction::kAnd2, {1, 2}},       {CellFunction::kOr2, {1, 2}},
      {CellFunction::kXor2, {1, 2}},       {CellFunction::kAoi21, {1, 2}},
      {CellFunction::kMux2, {1, 2}},       {CellFunction::kDff, {1, 2}},
  };
  for (const auto& entry : plan)
    for (std::uint32_t d : entry.drives) {
      lib.cells_.push_back(make_cell(entry.fn, d));
      const std::size_t idx = lib.cells_.size() - 1;
      if (is_sequential(entry.fn))
        lib.sequential_.push_back(idx);
      else
        lib.combinational_.push_back(idx);
    }
  return lib;
}

CellLibrary CellLibrary::from_cells(std::vector<Cell> cells) {
  CellLibrary lib;
  lib.cells_ = std::move(cells);
  for (std::size_t i = 0; i < lib.cells_.size(); ++i) {
    if (is_sequential(lib.cells_[i].function))
      lib.sequential_.push_back(i);
    else
      lib.combinational_.push_back(i);
  }
  return lib;
}

std::optional<std::size_t> CellLibrary::find(std::string_view name) const {
  for (std::size_t i = 0; i < cells_.size(); ++i)
    if (cells_[i].name == name) return i;
  return std::nullopt;
}

}  // namespace gnntrans::cell
