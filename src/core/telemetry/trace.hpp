/// \file trace.hpp
/// Scoped profiling spans flushed as Chrome trace_event JSON.
///
/// Usage: place a TraceSpan at the top of any scope worth seeing on a
/// timeline —
///
///   telemetry::TraceSpan span("estimate_batch", "serving");
///
/// When the global TraceRecorder is disabled (the default) a span costs one
/// relaxed atomic load at construction and nothing at destruction, so
/// instrumentation can stay in hot paths permanently. When enabled, each
/// completed span is appended to a per-thread ring buffer (bounded memory;
/// the oldest events are overwritten and counted as dropped). Rings are
/// touched by their owner thread only, except during write_chrome_json /
/// clear, which take the per-ring mutex.
///
/// The output is the Chrome trace_event format: "X" (complete) events for
/// spans, "s"/"t"/"f" flow events stitching one request across threads, and
/// "b"/"e" async pairs for the client-side request lane. Load it in
/// chrome://tracing or https://ui.perfetto.dev to see the serving/STA
/// pipeline as a flame chart per thread with arrows following each sampled
/// request from client send to response receipt.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <string_view>

namespace gnntrans::telemetry {

/// Request-scoped trace identity, carried across threads (through the
/// admission queue and batcher) and across the wire (protocol v2 trace
/// block). trace_id is a pure hash of the originating request_id, so the
/// same request keeps the same trace across retries; span_id identifies the
/// parent span on the sending side. sampled is the head-sampling decision:
/// when false, every stage skips span recording for this request.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool sampled = false;

  [[nodiscard]] bool valid() const noexcept { return trace_id != 0; }
};

/// Chrome trace_event phases we record. kComplete is a duration slice
/// ("X"); kFlowStart/Step/End ("s"/"t"/"f") are instants that chrome draws
/// as arrows between slices sharing an id; kAsync ("b" + "e") is stored as
/// one event and exported as a begin/end pair forming an async lane.
enum class TracePhase : std::uint8_t {
  kComplete = 0,
  kFlowStart,
  kFlowStep,
  kFlowEnd,
  kAsync,
};

/// One recorded event. Name/category are copied into fixed buffers at record
/// time so callers may pass transient strings (e.g. "sta_level_7"). flow_id
/// is 0 for plain spans; request-scoped events carry the trace_id so flow
/// arrows and async lanes line up across threads and processes.
struct TraceEvent {
  char name[48] = {0};
  char category[16] = {0};
  std::int64_t begin_ns = 0;  ///< steady-clock ns since recorder epoch
  std::int64_t end_ns = 0;
  std::uint64_t flow_id = 0;
  std::uint32_t thread_id = 0;
  TracePhase phase = TracePhase::kComplete;
};

/// Sampling policy. sample_every is the floor (1 = record every span);
/// overhead_budget_pct caps how much of the instrumented workload's wall time
/// span recording may consume — adapt() raises the effective 1-in-N above
/// sample_every until the measured cost fits the budget.
///
/// head_sample_rate / head_seed govern request head sampling: a request is
/// traced end-to-end iff a pure hash of (head_seed, request_id) lands under
/// the rate (FaultInjector-style), scaled down by the same factor the
/// overhead controller has raised the span interval. Deterministic: the same
/// request_id is always sampled the same way under a fixed controller state.
struct TraceConfig {
  std::size_t sample_every = 1;
  double overhead_budget_pct = 2.0;
  double head_sample_rate = 1.0 / 64.0;
  std::uint64_t head_seed = 0x9E3779B97F4A7C15ull;
};

/// Process-global span collector.
class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;
  ~TraceRecorder();

  [[nodiscard]] static TraceRecorder& global();

  void enable() noexcept { enabled_.store(true, std::memory_order_relaxed); }
  void disable() noexcept { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Monotonic timestamp in ns relative to the recorder's construction.
  [[nodiscard]] std::int64_t now_ns() const noexcept;

  /// Appends one completed span for the calling thread (no-op if disabled).
  void record(std::string_view name, std::string_view category,
              std::int64_t begin_ns, std::int64_t end_ns) noexcept;

  /// Generalized append: any phase, optional flow id (0 = none). For
  /// kComplete/kAsync, begin/end bracket the span; flow phases are instants
  /// (end_ns ignored, coerced to begin_ns). No-op if disabled.
  void record_event(std::string_view name, std::string_view category,
                    std::int64_t begin_ns, std::int64_t end_ns,
                    TracePhase phase, std::uint64_t flow_id) noexcept;

  /// Records a flow instant ("s"/"t"/"f" per phase) at now_ns() under the
  /// given flow id. Used to stitch one request's spans across threads and
  /// across the client/server boundary into arrows on the trace timeline.
  void record_flow(TracePhase phase, std::string_view name,
                   std::string_view category, std::uint64_t flow_id) noexcept;

  /// Deterministic request head sampling. Returns a TraceContext whose
  /// trace_id is a pure hash of (head_seed, request_id) — stable across
  /// retries — and whose sampled flag is true iff a second pure hash lands
  /// under the effective head rate (config head_sample_rate divided by
  /// however far the overhead controller has raised the span interval above
  /// its floor). Returns an invalid context when the recorder is disabled.
  [[nodiscard]] TraceContext head_sample(std::uint64_t request_id) noexcept;

  /// Fresh process-unique span id (never 0) for wiring parent links.
  [[nodiscard]] std::uint64_t next_span_id() noexcept {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Sets the sampling floor and overhead budget. Resets the effective rate
  /// back to config.sample_every; adapt() moves it from there.
  void configure(TraceConfig config) noexcept;
  [[nodiscard]] TraceConfig config() const noexcept;

  /// One relaxed load + a thread-local countdown: true on every Nth call per
  /// thread, where N is the current effective sample-every. Always false when
  /// the recorder is disabled. TraceSpan consults this at construction.
  [[nodiscard]] bool should_sample() noexcept;

  /// Effective 1-in-N currently applied by should_sample(). Starts at
  /// config().sample_every; adapt() raises it when the measured span-record
  /// cost would blow the overhead budget (and lowers it back when it fits).
  [[nodiscard]] std::size_t effective_sample_every() const noexcept {
    return effective_every_.load(std::memory_order_relaxed);
  }

  /// EWMA cost of one record() call in ns, self-measured on every 64th
  /// record. 0 until something has been measured.
  [[nodiscard]] double measured_span_cost_ns() const noexcept {
    return span_cost_ns_.load(std::memory_order_relaxed);
  }

  /// Overhead controller: given the workload's offered span load — how many
  /// spans one "unit" of work would record unsampled, and that unit's wall
  /// time in seconds — recompute the effective 1-in-N so
  ///   spans_per_unit * span_cost / N  <=  budget% of unit_seconds,
  /// never dropping below config().sample_every. Publishes the result as the
  /// gnntrans_trace_effective_sample_rate / _span_cost_ns gauges. Cheap and
  /// thread-safe; callers invoke it once per batch, not per span. No-op until
  /// a span cost has been measured.
  void adapt(double spans_per_unit, double unit_seconds) noexcept;

  /// Events currently retained across all rings (post-wrap this is capacity).
  [[nodiscard]] std::size_t event_count() const;
  /// Events lost to ring wrap-around since the last clear().
  [[nodiscard]] std::uint64_t dropped_count() const;

  /// Chrome trace JSON ({"traceEvents":[...]}), microsecond timestamps.
  void write_chrome_json(std::ostream& out) const;

  /// Drops all recorded events (rings stay allocated).
  void clear();

  /// Per-thread ring capacity in events. Applies to rings created after the
  /// call; default 16384 (~1.5 MiB per recording thread).
  void set_ring_capacity(std::size_t events);

 private:
  struct Ring;
  Ring& ring_for_this_thread();

  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> base_every_{1};      ///< configured floor
  std::atomic<std::size_t> effective_every_{1};  ///< what should_sample uses
  std::atomic<double> budget_pct_{2.0};
  std::atomic<double> span_cost_ns_{0.0};  ///< EWMA of record() self-timing
  std::atomic<double> head_rate_{1.0 / 64.0};
  std::atomic<std::uint64_t> head_seed_{0x9E3779B97F4A7C15ull};
  std::atomic<std::uint64_t> next_span_id_{1};
  struct Impl;
  [[nodiscard]] Impl& impl() const;
  mutable std::atomic<Impl*> impl_{nullptr};
};

/// RAII span: samples the clock at construction, records on destruction.
/// If the recorder is disabled — or the sampler skips this span — at
/// construction, the destructor does nothing (spans never straddle an
/// enable, and a skipped span costs one load + one thread-local decrement).
///
/// The context-parented overload is the cross-thread handoff: pass the
/// TraceContext that travelled with the request (through the queue or over
/// the wire) and the span records iff that request was head-sampled —
/// bypassing the 1-in-N span sampler so a sampled request always gets its
/// complete stage breakdown — tagged with the trace_id as its flow id.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name,
                     std::string_view category = "") noexcept {
    TraceRecorder& recorder = TraceRecorder::global();
    if (!recorder.should_sample()) return;
    name_ = name;
    category_ = category;
    begin_ns_ = recorder.now_ns();
  }

  TraceSpan(std::string_view name, std::string_view category,
            const TraceContext& parent) noexcept {
    TraceRecorder& recorder = TraceRecorder::global();
    if (!parent.sampled || !recorder.enabled()) return;
    name_ = name;
    category_ = category;
    flow_id_ = parent.trace_id;
    begin_ns_ = recorder.now_ns();
  }

  ~TraceSpan() {
    if (begin_ns_ < 0) return;
    TraceRecorder& recorder = TraceRecorder::global();
    recorder.record_event(name_, category_, begin_ns_, recorder.now_ns(),
                          TracePhase::kComplete, flow_id_);
  }

  /// True when this span is actually recording (sampled + enabled).
  [[nodiscard]] bool active() const noexcept { return begin_ns_ >= 0; }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  std::string_view name_;
  std::string_view category_;
  std::uint64_t flow_id_ = 0;
  std::int64_t begin_ns_ = -1;
};

}  // namespace gnntrans::telemetry
