// Unit and property tests for the dense/sparse numerical kernels.
#include <gtest/gtest.h>

#include <random>

#include "linalg/matrix.hpp"
#include "linalg/solve.hpp"
#include "linalg/sparse.hpp"

namespace {

using namespace gnntrans::linalg;

Matrix random_matrix(std::size_t n, std::mt19937_64& rng, double scale = 1.0) {
  std::uniform_real_distribution<double> dist(-scale, scale);
  Matrix m(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) m(r, c) = dist(rng);
  return m;
}

/// Random SPD matrix: A = B B^T + n I.
Matrix random_spd(std::size_t n, std::mt19937_64& rng) {
  const Matrix b = random_matrix(n, rng);
  Matrix a = b.matmul(b.transposed());
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

std::vector<double> random_vector(std::size_t n, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> v(n);
  for (double& x : v) x = dist(rng);
  return v;
}

TEST(Matrix, IdentityHasOnesOnDiagonal) {
  const Matrix i3 = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_DOUBLE_EQ(i3(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, MatvecMatchesManualComputation) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  const std::vector<double> x{1.0, 0.5, -1.0};
  const std::vector<double> y = a.matvec(x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 1.0 + 1.0 - 3.0);
  EXPECT_DOUBLE_EQ(y[1], 4.0 + 2.5 - 6.0);
}

TEST(Matrix, MatmulAgainstHandComputedProduct) {
  Matrix a(2, 2), b(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  const Matrix c = a.matmul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Matrix, TransposeRoundTrip) {
  std::mt19937_64 rng(1);
  const Matrix a = random_matrix(5, rng);
  const Matrix att = a.transposed().transposed();
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 5; ++c) EXPECT_DOUBLE_EQ(a(r, c), att(r, c));
}

TEST(Matrix, IdentityIsMatmulNeutral) {
  std::mt19937_64 rng(2);
  const Matrix a = random_matrix(4, rng);
  const Matrix prod = a.matmul(Matrix::identity(4));
  EXPECT_NEAR(max_abs_diff(a.data(), prod.data()), 0.0, 1e-15);
}

TEST(VectorOps, DotAndNormAgree) {
  const std::vector<double> v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(v, v), 25.0);
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
}

TEST(VectorOps, AxpyAccumulates) {
  std::vector<double> y{1.0, 1.0};
  const std::vector<double> x{2.0, -1.0};
  axpy(0.5, x, y);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 0.5);
}

class LuSeeded : public ::testing::TestWithParam<int> {};

TEST_P(LuSeeded, SolveReconstructsRhs) {
  std::mt19937_64 rng(GetParam());
  for (std::size_t n : {2u, 5u, 12u, 30u}) {
    Matrix a = random_matrix(n, rng);
    for (std::size_t i = 0; i < n; ++i) a(i, i) += 2.0 * n;  // well-conditioned
    const std::vector<double> x_true = random_vector(n, rng);
    const std::vector<double> b = a.matvec(x_true);
    const auto lu = LuFactor::factor(a);
    ASSERT_TRUE(lu.has_value());
    const std::vector<double> x = lu->solve(b);
    EXPECT_LT(max_abs_diff(x, x_true), 1e-9) << "n=" << n;
  }
}

TEST_P(LuSeeded, CholeskyMatchesLuOnSpd) {
  std::mt19937_64 rng(GetParam() + 100);
  const std::size_t n = 10;
  const Matrix a = random_spd(n, rng);
  const std::vector<double> b = random_vector(n, rng);
  const auto lu = LuFactor::factor(a);
  const auto chol = CholeskyFactor::factor(a);
  ASSERT_TRUE(lu.has_value());
  ASSERT_TRUE(chol.has_value());
  EXPECT_LT(max_abs_diff(lu->solve(b), chol->solve(b)), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LuSeeded, ::testing::Range(1, 9));

TEST(Lu, DetectsSingularMatrix) {
  Matrix a(3, 3);  // rank 1
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = static_cast<double>(r + 1);
  EXPECT_FALSE(LuFactor::factor(a).has_value());
}

TEST(Lu, HandlesPermutationRequiredPivot) {
  Matrix a(2, 2);
  a(0, 0) = 0.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 0.0;
  const auto lu = LuFactor::factor(a);
  ASSERT_TRUE(lu.has_value());
  const std::vector<double> x = lu->solve(std::vector<double>{3.0, 7.0});
  EXPECT_DOUBLE_EQ(x[0], 7.0);
  EXPECT_DOUBLE_EQ(x[1], 3.0);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 1.0;  // eigenvalues 3, -1
  EXPECT_FALSE(CholeskyFactor::factor(a).has_value());
}

TEST(Csr, FromTripletsSumsDuplicates) {
  std::vector<Triplet> t{{0, 0, 1.0}, {0, 0, 2.0}, {1, 0, -1.0}};
  const CsrMatrix m = CsrMatrix::from_triplets(2, t);
  EXPECT_EQ(m.nnz(), 2u);
  const std::vector<double> y = m.matvec(std::vector<double>{1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(Csr, DiagonalExtractsPresentAndAbsentEntries) {
  std::vector<Triplet> t{{0, 0, 4.0}, {1, 0, 1.0}};
  const CsrMatrix m = CsrMatrix::from_triplets(2, t);
  const std::vector<double> d = m.diagonal();
  EXPECT_DOUBLE_EQ(d[0], 4.0);
  EXPECT_DOUBLE_EQ(d[1], 0.0);
}

class CgSeeded : public ::testing::TestWithParam<int> {};

TEST_P(CgSeeded, MatchesDenseCholeskyOnSpdSystem) {
  std::mt19937_64 rng(GetParam());
  const std::size_t n = 20;
  const Matrix a = random_spd(n, rng);
  std::vector<Triplet> triplets;
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      triplets.push_back({r, c, a(r, c)});
  const CsrMatrix sparse = CsrMatrix::from_triplets(n, triplets);
  const std::vector<double> b = random_vector(n, rng);

  const CgResult cg = conjugate_gradient(sparse, b, 1e-12);
  ASSERT_TRUE(cg.converged);
  const auto chol = CholeskyFactor::factor(a);
  ASSERT_TRUE(chol.has_value());
  EXPECT_LT(max_abs_diff(cg.x, chol->solve(b)), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CgSeeded, ::testing::Range(1, 7));

TEST(Cg, ZeroRhsConvergesImmediately) {
  const CsrMatrix m = CsrMatrix::from_triplets(3, {{0, 0, 1.0}, {1, 1, 1.0}, {2, 2, 1.0}});
  const CgResult r = conjugate_gradient(m, std::vector<double>(3, 0.0));
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0u);
  for (double v : r.x) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
