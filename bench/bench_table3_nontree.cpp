// Reproduces Table III: wire slew/delay estimation accuracy (R^2) on
// *non-tree* nets of the 7 test benchmarks, comparing DAC20 / GCNII /
// GraphSage / GAT / Trans. / GNNTrans trained on the pooled training nets.
#include <cstdio>

#include "support.hpp"

using namespace gnntrans;
using bench::TablePrinter;

int main() {
  const bench::Scale scale = bench::Scale::from_env();
  const auto lib = cell::CellLibrary::make_default();

  std::printf("=== Table III reproduction: non-tree wire slew/delay R^2 ===\n");
  std::printf("(train nets/design: %zu, test nets/design: %zu, epochs: %zu)\n\n",
              scale.train_nets_per_design, scale.test_nets_per_design,
              scale.epochs);

  const auto datasets = bench::build_wire_datasets(scale, lib);
  const auto train_pool = bench::pool_training_records(datasets);
  std::printf("pooled training nets: %zu\n", train_pool.size());

  const auto zoo = bench::train_zoo(scale, train_pool);

  std::vector<std::string> headers{"Benchmark"};
  std::vector<int> widths{12};
  for (const auto& entry : zoo) {
    headers.push_back(entry->name());
    widths.push_back(14);
  }
  std::printf("\nWire Slew/Delay Estimation Accuracy of Non-tree Nets (R^2)\n");
  TablePrinter table(headers, widths);
  table.print_header();

  std::vector<double> slew_sum(zoo.size(), 0.0), delay_sum(zoo.size(), 0.0);
  std::size_t design_count = 0;
  for (const bench::BenchmarkData& data : datasets) {
    if (data.spec.training) continue;
    const auto non_tree = bench::non_tree_only(data.records);
    if (non_tree.empty()) continue;
    ++design_count;
    std::vector<std::string> row{data.spec.name};
    for (std::size_t m = 0; m < zoo.size(); ++m) {
      const auto [slew_r2, delay_r2] = zoo[m]->evaluate(non_tree);
      slew_sum[m] += slew_r2;
      delay_sum[m] += delay_r2;
      row.push_back(TablePrinter::fmt_pair(slew_r2, delay_r2));
    }
    table.print_row(row);
  }
  std::vector<std::string> avg{"Average"};
  for (std::size_t m = 0; m < zoo.size(); ++m)
    avg.push_back(TablePrinter::fmt_pair(slew_sum[m] / design_count,
                                         delay_sum[m] / design_count));
  table.print_row(avg);

  std::printf(
      "\nPaper averages (Table III): DAC20 0.666/0.639, GCNII 0.830/0.802, "
      "GraphSage 0.866/0.850,\n  GAT 0.845/0.820, Trans. 0.813/0.790, "
      "GNNTrans 0.978/0.970.\nShape to hold: GNNTrans best; DAC20 worst "
      "(loop-breaking penalty on non-tree nets).\n");
  return 0;
}
