#include "rcnet/rcnet.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <vector>

namespace gnntrans::rcnet {

namespace {

// FNV-1a over 64-bit words with a splitmix64 finalizer — the repo's standard
// content-hash idiom (quality.cpp feature baselines, trace ids, fault keys).
// Doubles are folded by raw bit pattern: cache hits must be *bitwise*
// identical to recomputation, so the key must distinguish values that differ
// in even one ULP.
constexpr std::uint64_t kFnvBasis = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline void fold(std::uint64_t& h, std::uint64_t word) noexcept {
  h = (h ^ word) * kFnvPrime;
}

inline void fold(std::uint64_t& h, double value) noexcept {
  fold(h, std::bit_cast<std::uint64_t>(value));
}

inline std::uint64_t finalize(std::uint64_t h) noexcept {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

}  // namespace

bool RcNet::is_tree() const {
  if (node_count() == 0) return false;
  return resistors.size() == node_count() - 1 && is_connected(*this);
}

double RcNet::total_ground_cap() const noexcept {
  return std::accumulate(ground_cap.begin(), ground_cap.end(), 0.0);
}

double RcNet::total_coupling_cap() const noexcept {
  double acc = 0.0;
  for (const CouplingCap& c : couplings) acc += c.farads;
  return acc;
}

double RcNet::total_resistance() const noexcept {
  double acc = 0.0;
  for (const Resistor& r : resistors) acc += r.ohms;
  return acc;
}

std::vector<std::string> RcNet::validate(std::uint64_t* content_hash) const {
  std::vector<std::string> errors;
  std::uint64_t hash = kFnvBasis;
  const std::size_t n = node_count();
  fold(hash, static_cast<std::uint64_t>(n));
  fold(hash, static_cast<std::uint64_t>(source));
  fold(hash, static_cast<std::uint64_t>(sinks.size()));
  if (n == 0) {
    errors.push_back("net has no nodes");
    if (content_hash != nullptr) *content_hash = finalize(hash);
    return errors;
  }
  if (source >= n) errors.push_back("source node out of range");
  if (sinks.empty()) errors.push_back("net has no sinks");
  std::vector<bool> sink_seen(n, false);
  for (NodeId s : sinks) {
    fold(hash, static_cast<std::uint64_t>(s));
    if (s >= n) {
      errors.push_back("sink node out of range");
    } else {
      if (s == source) errors.push_back("sink coincides with source");
      if (sink_seen[s])
        errors.push_back("duplicate sink node " + std::to_string(s));
      sink_seen[s] = true;
    }
  }
  std::vector<std::pair<NodeId, NodeId>> edge_keys;
  edge_keys.reserve(resistors.size());
  fold(hash, static_cast<std::uint64_t>(resistors.size()));
  for (std::size_t i = 0; i < resistors.size(); ++i) {
    const Resistor& r = resistors[i];
    fold(hash, (static_cast<std::uint64_t>(r.a) << 32) |
                   static_cast<std::uint64_t>(r.b));
    fold(hash, r.ohms);
    if (r.a >= n || r.b >= n)
      errors.push_back("resistor " + std::to_string(i) + " endpoint out of range");
    else if (r.a == r.b)
      errors.push_back("resistor " + std::to_string(i) + " is a self loop");
    else
      edge_keys.push_back(std::minmax(r.a, r.b));
    if (!(r.ohms > 0.0))
      errors.push_back("resistor " + std::to_string(i) + " has non-positive value");
  }
  // Parallel resistors between one node pair mean the extractor emitted the
  // same segment twice — a malformed netlist, not a legitimate loop.
  std::sort(edge_keys.begin(), edge_keys.end());
  for (std::size_t i = 1; i < edge_keys.size(); ++i)
    if (edge_keys[i] == edge_keys[i - 1])
      errors.push_back("duplicate resistor between nodes " +
                       std::to_string(edge_keys[i].first) + " and " +
                       std::to_string(edge_keys[i].second));
  for (std::size_t i = 0; i < n; ++i) {
    fold(hash, ground_cap[i]);
    if (!(ground_cap[i] > 0.0))
      errors.push_back("node " + std::to_string(i) + " has non-positive ground cap");
  }
  fold(hash, static_cast<std::uint64_t>(couplings.size()));
  for (std::size_t i = 0; i < couplings.size(); ++i) {
    fold(hash, static_cast<std::uint64_t>(couplings[i].victim_node));
    fold(hash, couplings[i].farads);
    fold(hash, couplings[i].aggressor_seed);
    if (couplings[i].victim_node >= n)
      errors.push_back("coupling " + std::to_string(i) + " victim out of range");
    if (!(couplings[i].farads > 0.0))
      errors.push_back("coupling " + std::to_string(i) + " has non-positive value");
  }
  if (content_hash != nullptr) *content_hash = finalize(hash);
  if (errors.empty()) {
    // Loop sanity: a connected graph has resistors >= n-1; the surplus is the
    // independent-loop count. A mesh denser than one loop per node is outside
    // anything extraction produces and would blow up path enumeration.
    const std::size_t loops = resistors.size() - (n - 1);
    if (resistors.size() >= n && loops > n)
      errors.push_back("implausible loop count " + std::to_string(loops) +
                       " for " + std::to_string(n) + " nodes");

    // Per-node reachability from the source: name dangling nodes and each
    // unreachable sink individually rather than one generic message.
    const Adjacency adj = build_adjacency(*this);
    std::vector<bool> seen(n, false);
    std::vector<NodeId> stack{source};
    seen[source] = true;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const Neighbor& nb : adj[v])
        if (!seen[nb.node]) {
          seen[nb.node] = true;
          stack.push_back(nb.node);
        }
    }
    for (NodeId s : sinks)
      if (!seen[s])
        errors.push_back("sink " + std::to_string(s) +
                         " unreachable from source");
    for (std::size_t v = 0; v < n; ++v) {
      if (seen[v]) continue;
      if (adj[v].empty())
        errors.push_back("node " + std::to_string(v) +
                         " is dangling (no resistor attached)");
      else if (!sink_seen[v])
        errors.push_back("node " + std::to_string(v) +
                         " disconnected from source");
    }
  }
  return errors;
}

Adjacency build_adjacency(const RcNet& net) {
  Adjacency adj(net.node_count());
  for (std::size_t i = 0; i < net.resistors.size(); ++i) {
    const Resistor& r = net.resistors[i];
    adj[r.a].push_back({r.b, static_cast<std::uint32_t>(i)});
    adj[r.b].push_back({r.a, static_cast<std::uint32_t>(i)});
  }
  return adj;
}

bool is_connected(const RcNet& net) {
  const std::size_t n = net.node_count();
  if (n == 0) return true;
  const Adjacency adj = build_adjacency(net);
  std::vector<bool> seen(n, false);
  std::vector<NodeId> stack{net.source < n ? net.source : NodeId{0}};
  seen[stack.back()] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (const Neighbor& nb : adj[v]) {
      if (!seen[nb.node]) {
        seen[nb.node] = true;
        ++visited;
        stack.push_back(nb.node);
      }
    }
  }
  return visited == n;
}

}  // namespace gnntrans::rcnet
