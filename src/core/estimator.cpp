#include "core/estimator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "core/telemetry/telemetry.hpp"
#include "tensor/serialize.hpp"

namespace gnntrans::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Serving metrics, registered once in the global registry. Handles are
/// lock-free to increment; scrape happens via MetricsRegistry exports.
struct ServingMetrics {
  telemetry::Counter nets = telemetry::MetricsRegistry::global().counter(
      "gnntrans_serving_nets_total", "Nets served by estimate_batch");
  telemetry::Counter paths = telemetry::MetricsRegistry::global().counter(
      "gnntrans_serving_paths_total", "Source-sink paths served");
  telemetry::Histogram net_latency =
      telemetry::MetricsRegistry::global().histogram(
          "gnntrans_serving_net_latency_seconds",
          telemetry::HistogramData::default_latency_bounds(),
          "Per-net inference wall latency");
  telemetry::Histogram batch_latency =
      telemetry::MetricsRegistry::global().histogram(
          "gnntrans_serving_batch_seconds",
          telemetry::HistogramData::default_latency_bounds(),
          "estimate_batch wall time");
  telemetry::Gauge arena_peak = telemetry::MetricsRegistry::global().gauge(
      "gnntrans_serving_arena_peak_bytes",
      "Max per-worker scratch-arena high-water mark");
  telemetry::Gauge pool_threads = telemetry::MetricsRegistry::global().gauge(
      "gnntrans_serving_pool_threads", "Workers used by the last batch");

  static const ServingMetrics& get() {
    static const ServingMetrics metrics;
    return metrics;
  }
};

std::string human_bytes(std::size_t bytes) {
  char buf[32];
  if (bytes >= 1024 * 1024)
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  else
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(bytes) / 1024.0);
  return buf;
}

}  // namespace

void InferenceStats::merge(const InferenceStats& other) {
  nets += other.nets;
  paths += other.paths;
  threads = std::max(threads, other.threads);
  wall_seconds += other.wall_seconds;
  nets_per_second =
      wall_seconds > 0.0 ? static_cast<double>(nets) / wall_seconds : 0.0;
  latency.merge(other.latency);
  p50_net_seconds = latency.quantile(0.50);
  p99_net_seconds = latency.quantile(0.99);
  arena_peak_bytes = std::max(arena_peak_bytes, other.arena_peak_bytes);
  arena_reused_buffers += other.arena_reused_buffers;
  arena_fresh_allocs += other.arena_fresh_allocs;
}

std::string InferenceStats::summary() const {
  const std::size_t acquisitions = arena_reused_buffers + arena_fresh_allocs;
  const double reuse_pct =
      acquisitions > 0
          ? 100.0 * static_cast<double>(arena_reused_buffers) /
                static_cast<double>(acquisitions)
          : 0.0;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%zu nets (%zu paths) in %.3f s — %.0f nets/s on %zu "
                "thread%s; per-net p50 %.1f us, p99 %.1f us; arena peak %s, "
                "%.1f%% buffer reuse",
                nets, paths, wall_seconds, nets_per_second, threads,
                threads == 1 ? "" : "s", p50_net_seconds * 1e6,
                p99_net_seconds * 1e6, human_bytes(arena_peak_bytes).c_str(),
                reuse_pct);
  return buf;
}

WireTimingEstimator WireTimingEstimator::train(
    const std::vector<features::WireRecord>& records, Options options) {
  if (records.empty())
    throw std::invalid_argument("WireTimingEstimator::train: no records");

  WireTimingEstimator est;
  est.standardizer_.fit(records);

  options.model.node_feature_dim = features::kNodeFeatureCount;
  options.model.path_feature_dim = features::kPathFeatureCount;
  est.model_ = nn::make_model(options.kind, options.model);

  const std::vector<nn::GraphSample> samples =
      features::make_samples(records, est.standardizer_);
  est.train_report_ = train_model(*est.model_, samples, options.train);
  return est;
}

std::vector<PathEstimate> WireTimingEstimator::estimate_one(
    const rcnet::RcNet& net, const features::NetContext& context,
    nn::Workspace* workspace) const {
  tensor::NoGradGuard no_grad;

  // Build an unlabeled record: features only, labels zero.
  features::WireRecord rec;
  rec.net = net;
  rec.context = context;
  {
    const telemetry::TraceSpan span("featurize", "serving");
    rec.raw = features::extract_features(net, context);
  }
  rec.non_tree = !net.is_tree();
  rec.slew_labels.assign(rec.raw.analysis.paths.size(), 0.0);
  rec.delay_labels.assign(rec.raw.analysis.paths.size(), 0.0);

  const nn::GraphSample sample = standardizer_.make_sample(rec);
  const telemetry::TraceSpan forward_span("forward", "serving");
  const nn::WirePrediction pred = model_->forward(sample, workspace);

  std::vector<PathEstimate> out;
  out.reserve(sample.path_count);
  for (std::size_t q = 0; q < sample.path_count; ++q) {
    PathEstimate pe;
    pe.sink = rec.raw.analysis.paths[q].sink;
    pe.slew = standardizer_.unstandardize_slew(pred.slew(q, 0));
    pe.delay = standardizer_.unstandardize_delay(pred.delay(q, 0));
    out.push_back(pe);
  }
  return out;
}

std::vector<PathEstimate> WireTimingEstimator::estimate(
    const rcnet::RcNet& net, const features::NetContext& context) const {
  return estimate_one(net, context, nullptr);
}

std::vector<std::vector<PathEstimate>> WireTimingEstimator::estimate_batch(
    std::span<const NetBatchItem> items, const BatchOptions& options,
    InferenceStats* stats) const {
  const telemetry::TraceSpan batch_span("estimate_batch", "serving");
  const auto start = Clock::now();
  std::vector<std::vector<PathEstimate>> results(items.size());
  std::vector<double> latency(items.size(), 0.0);

  ThreadPool* pool = options.pool;
  std::unique_ptr<ThreadPool> owned_pool;
  std::size_t threads = std::max<std::size_t>(1, options.threads);
  if (pool) {
    threads = pool->size();
  } else if (threads > 1) {
    owned_pool = std::make_unique<ThreadPool>(threads);
    pool = owned_pool.get();
  }

  std::vector<nn::Workspace> local_workspaces;
  std::vector<nn::Workspace>& workspaces =
      options.workspaces ? *options.workspaces : local_workspaces;
  if (workspaces.size() < threads) workspaces.resize(threads);

  // Snapshot arena counters so stats report this call's deltas even when the
  // caller reuses workspaces across batches.
  std::vector<tensor::ScratchArena::Stats> before(threads);
  for (std::size_t w = 0; w < threads; ++w) before[w] = workspaces[w].arena_stats();

  const auto run_one = [&](std::size_t i, std::size_t worker) {
    const auto t0 = Clock::now();
    results[i] =
        estimate_one(*items[i].net, *items[i].context, &workspaces[worker]);
    latency[i] = seconds_since(t0);
  };
  if (threads == 1) {
    for (std::size_t i = 0; i < items.size(); ++i) run_one(i, 0);
  } else {
    pool->parallel_for(items.size(), run_one);
  }

  const double wall = seconds_since(start);
  std::size_t total_paths = 0;
  for (const auto& r : results) total_paths += r.size();
  std::size_t peak_bytes = 0;
  for (std::size_t w = 0; w < threads; ++w)
    peak_bytes = std::max(peak_bytes, workspaces[w].arena_stats().peak_bytes);

  // Publish to the process-global registry regardless of whether the caller
  // asked for per-call stats — dashboards see every batch.
  const ServingMetrics& metrics = ServingMetrics::get();
  metrics.nets.inc(items.size());
  metrics.paths.inc(total_paths);
  for (const double s : latency) metrics.net_latency.observe(s);
  metrics.batch_latency.observe(wall);
  metrics.arena_peak.set_max(static_cast<double>(peak_bytes));
  metrics.pool_threads.set(static_cast<double>(threads));

  if (stats) {
    *stats = InferenceStats{};
    stats->nets = items.size();
    stats->paths = total_paths;
    stats->threads = threads;
    stats->wall_seconds = wall;
    stats->nets_per_second =
        stats->wall_seconds > 0.0
            ? static_cast<double>(stats->nets) / stats->wall_seconds
            : 0.0;
    for (const double s : latency) stats->latency.observe(s);
    stats->p50_net_seconds = stats->latency.quantile(0.50);
    stats->p99_net_seconds = stats->latency.quantile(0.99);
    stats->arena_peak_bytes = peak_bytes;
    for (std::size_t w = 0; w < threads; ++w) {
      const tensor::ScratchArena::Stats after = workspaces[w].arena_stats();
      stats->arena_reused_buffers += after.reused - before[w].reused;
      stats->arena_fresh_allocs += after.allocated - before[w].allocated;
    }
  }
  return results;
}

Evaluation WireTimingEstimator::evaluate(
    const std::vector<features::WireRecord>& records) const {
  const std::vector<nn::GraphSample> samples =
      features::make_samples(records, standardizer_);
  return evaluate_model(
      *model_, samples,
      [this](double z) { return standardizer_.unstandardize_slew(z); },
      [this](double z) { return standardizer_.unstandardize_delay(z); });
}

void WireTimingEstimator::save(std::ostream& out) const {
  tensor::write_header(out, "GNNTRANS_ESTIMATOR", 1);
  standardizer_.save(out);
  nn::save_model(out, *model_);
}

void WireTimingEstimator::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  save(out);
}

WireTimingEstimator WireTimingEstimator::load(std::istream& in) {
  tensor::check_header(in, "GNNTRANS_ESTIMATOR", 1);
  WireTimingEstimator est;
  est.standardizer_.load(in);
  est.model_ = nn::load_model(in);
  return est;
}

WireTimingEstimator WireTimingEstimator::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return load(in);
}

EstimatorWireSource::EstimatorWireSource(const WireTimingEstimator& estimator,
                                         const netlist::Design& design,
                                         const cell::CellLibrary& library,
                                         std::size_t threads)
    : estimator_(estimator), design_(design), library_(library) {
  net_by_name_.reserve(design.nets.size());
  for (std::size_t i = 0; i < design.nets.size(); ++i)
    net_by_name_.emplace(design.nets[i].rc.name, i);
  set_threads(threads);
}

void EstimatorWireSource::set_threads(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  if (threads == threads_) return;
  threads_ = threads;
  pool_.reset();  // recreated lazily at the next batched call
}

features::NetContext EstimatorWireSource::context_for(
    const rcnet::RcNet& net, double input_slew,
    double driver_resistance) const {
  features::NetContext ctx;
  ctx.input_slew = input_slew;
  ctx.driver_resistance = driver_resistance;

  const auto it = net_by_name_.find(net.name);
  if (it != net_by_name_.end()) {
    const netlist::DesignNet& dnet = design_.nets[it->second];
    const cell::Cell& driver =
        library_.at(design_.instances[dnet.driver].cell_index);
    ctx.driver_strength = driver.drive_strength;
    ctx.driver_function = static_cast<std::uint32_t>(driver.function);
    for (netlist::InstanceId load : dnet.loads) {
      const cell::Cell& lc = library_.at(design_.instances[load].cell_index);
      ctx.loads.push_back({lc.drive_strength,
                           static_cast<std::uint32_t>(lc.function),
                           lc.input_cap});
    }
  } else {
    // Unknown net (standalone use): neutral load context.
    ctx.loads.assign(net.sinks.size(), features::SinkLoad{});
  }
  return ctx;
}

namespace {

std::vector<sim::SinkTiming> to_sink_timings(
    const std::vector<PathEstimate>& estimates) {
  std::vector<sim::SinkTiming> out;
  out.reserve(estimates.size());
  for (const PathEstimate& pe : estimates) {
    sim::SinkTiming st;
    st.sink = pe.sink;
    st.delay = pe.delay;
    st.slew = std::max(1e-12, pe.slew);  // guard downstream NLDM lookups
    st.settled = true;
    out.push_back(st);
  }
  return out;
}

}  // namespace

std::vector<sim::SinkTiming> EstimatorWireSource::time_net(
    const rcnet::RcNet& net, double input_slew, double driver_resistance) {
  const features::NetContext ctx =
      context_for(net, input_slew, driver_resistance);
  return to_sink_timings(estimator_.estimate(net, ctx));
}

std::vector<std::vector<sim::SinkTiming>> EstimatorWireSource::time_nets(
    std::span<const netlist::WireTimingRequest> requests) {
  std::vector<features::NetContext> contexts;
  contexts.reserve(requests.size());
  std::vector<NetBatchItem> items;
  items.reserve(requests.size());
  for (const netlist::WireTimingRequest& r : requests) {
    contexts.push_back(
        context_for(*r.net, r.input_slew, r.driver_resistance));
    items.push_back({r.net, &contexts.back()});
  }

  if (threads_ > 1 && !pool_) pool_ = std::make_unique<ThreadPool>(threads_);
  BatchOptions options;
  options.threads = threads_;
  options.pool = pool_.get();
  options.workspaces = &workspaces_;

  InferenceStats batch_stats;
  const std::vector<std::vector<PathEstimate>> estimates =
      estimator_.estimate_batch(items, options, &batch_stats);
  stats_.merge(batch_stats);

  std::vector<std::vector<sim::SinkTiming>> out;
  out.reserve(estimates.size());
  for (const std::vector<PathEstimate>& e : estimates)
    out.push_back(to_sink_timings(e));
  return out;
}

}  // namespace gnntrans::core
