// SPEF writer/parser round-trip and robustness tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>

#include "rcnet/generate.hpp"
#include "rcnet/spef.hpp"

namespace {

using namespace gnntrans::rcnet;

RcNet sample_net(std::uint64_t seed = 3) {
  std::mt19937_64 rng(seed);
  NetGenConfig cfg;
  cfg.coupling_prob = 1.0;  // exercise coupling caps in SPEF
  return generate_net(cfg, rng, "top/u1/n42");
}

void expect_nets_equal(const RcNet& a, const RcNet& b, double tol = 1e-12) {
  EXPECT_EQ(a.name, b.name);
  ASSERT_EQ(a.node_count(), b.node_count());
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.sinks, b.sinks);
  ASSERT_EQ(a.resistors.size(), b.resistors.size());
  for (std::size_t i = 0; i < a.resistors.size(); ++i) {
    EXPECT_EQ(a.resistors[i].a, b.resistors[i].a);
    EXPECT_EQ(a.resistors[i].b, b.resistors[i].b);
    EXPECT_NEAR(a.resistors[i].ohms, b.resistors[i].ohms, tol * a.resistors[i].ohms);
  }
  for (std::size_t i = 0; i < a.node_count(); ++i)
    EXPECT_NEAR(a.ground_cap[i], b.ground_cap[i], tol);
  ASSERT_EQ(a.couplings.size(), b.couplings.size());
  for (std::size_t i = 0; i < a.couplings.size(); ++i) {
    EXPECT_EQ(a.couplings[i].victim_node, b.couplings[i].victim_node);
    EXPECT_EQ(a.couplings[i].aggressor_seed, b.couplings[i].aggressor_seed);
    EXPECT_NEAR(a.couplings[i].farads, b.couplings[i].farads, tol);
  }
}

class SpefRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SpefRoundTrip, WriteParseIdentity) {
  const RcNet net = sample_net(GetParam());
  const auto parsed = net_from_spef(to_spef(net));
  ASSERT_TRUE(parsed.has_value());
  expect_nets_equal(net, *parsed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpefRoundTrip, ::testing::Range(1, 13));

TEST(Spef, MultipleNetsRoundTrip) {
  std::mt19937_64 rng(5);
  NetGenConfig cfg;
  std::vector<RcNet> nets;
  for (int i = 0; i < 5; ++i)
    nets.push_back(generate_net(cfg, rng, "n" + std::to_string(i)));

  std::ostringstream out;
  out.precision(17);
  write_spef(out, nets);
  std::istringstream in(out.str());
  const SpefParseResult result = parse_spef(in);
  EXPECT_TRUE(result.warnings.empty());
  ASSERT_EQ(result.nets.size(), nets.size());
  for (std::size_t i = 0; i < nets.size(); ++i)
    expect_nets_equal(nets[i], result.nets[i]);
}

TEST(Spef, ParsedNetsPassValidation) {
  const RcNet net = sample_net(17);
  const auto parsed = net_from_spef(to_spef(net));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->validate().empty());
}

TEST(Spef, EmptyDocumentYieldsNoNets) {
  std::istringstream in("*SPEF \"x\"\n*DESIGN \"y\"\n");
  const SpefParseResult result = parse_spef(in);
  EXPECT_TRUE(result.nets.empty());
}

TEST(Spef, NetWithoutCapsIsDroppedWithWarning) {
  std::istringstream in("*D_NET foo 0.0\n*CONN\n*END\n");
  const SpefParseResult result = parse_spef(in);
  EXPECT_TRUE(result.nets.empty());
  ASSERT_FALSE(result.warnings.empty());
  EXPECT_NE(result.warnings.front().find("foo"), std::string::npos);
}

TEST(Spef, DisconnectedNetIsRejected) {
  // Two caps, no resistor: structurally invalid.
  std::istringstream in(
      "*D_NET bad 2.0\n*CONN\n*I bad:0 I\n*I bad:1 O\n"
      "*CAP\n1 bad:0 1.0\n2 bad:1 1.0\n*RES\n*END\n");
  const SpefParseResult result = parse_spef(in);
  EXPECT_TRUE(result.nets.empty());
  EXPECT_FALSE(result.warnings.empty());
}

TEST(Spef, MinimalHandWrittenNetParses) {
  std::istringstream in(
      "*D_NET n1 3.0\n*CONN\n*I n1:0 I\n*I n1:1 O\n"
      "*CAP\n1 n1:0 1.5\n2 n1:1 1.5\n*RES\n1 n1:0 n1:1 25.0\n*END\n");
  const SpefParseResult result = parse_spef(in);
  ASSERT_EQ(result.nets.size(), 1u);
  const RcNet& net = result.nets.front();
  EXPECT_EQ(net.node_count(), 2u);
  EXPECT_EQ(net.source, 0u);
  ASSERT_EQ(net.sinks.size(), 1u);
  EXPECT_NEAR(net.ground_cap[0], 1.5e-15, 1e-20);
  EXPECT_DOUBLE_EQ(net.resistors[0].ohms, 25.0);
}

TEST(Spef, SparseNodeIndicesAreCompacted) {
  // Node indices 0 and 7 should remap to 0 and 1.
  std::istringstream in(
      "*D_NET n1 3.0\n*CONN\n*I n1:0 I\n*I n1:7 O\n"
      "*CAP\n1 n1:0 1.0\n2 n1:7 2.0\n*RES\n1 n1:0 n1:7 10.0\n*END\n");
  const SpefParseResult result = parse_spef(in);
  ASSERT_EQ(result.nets.size(), 1u);
  EXPECT_EQ(result.nets[0].node_count(), 2u);
  EXPECT_EQ(result.nets[0].sinks[0], 1u);
}

TEST(Spef, RandomizedNetsPreserveElectricalProperties) {
  // Property-based round-trip over a mixed population: for ~50 randomized
  // nets (half non-tree), write+parse must preserve the topology and the
  // aggregate electrical quantities that downstream timing depends on.
  std::mt19937_64 rng(2026);
  NetGenConfig cfg;
  cfg.non_tree_fraction = 0.5;
  cfg.coupling_prob = 0.5;

  std::vector<RcNet> nets;
  nets.reserve(50);
  for (int i = 0; i < 50; ++i) {
    RcNet net = generate_net(cfg, rng, "prop" + std::to_string(i));
    if (net.validate().empty()) nets.push_back(std::move(net));
  }
  ASSERT_GE(nets.size(), 45u);
  bool saw_non_tree = false;
  bool saw_coupling = false;

  std::ostringstream out;
  out.precision(17);
  write_spef(out, nets);
  std::istringstream in(out.str());
  const SpefParseResult result = parse_spef(in);
  EXPECT_TRUE(result.warnings.empty());
  ASSERT_EQ(result.nets.size(), nets.size());

  for (std::size_t i = 0; i < nets.size(); ++i) {
    const RcNet& a = nets[i];
    const RcNet& b = result.nets[i];
    SCOPED_TRACE(a.name);

    // Topology survives: node/terminal structure and tree-ness.
    EXPECT_EQ(a.node_count(), b.node_count());
    EXPECT_EQ(a.source, b.source);
    EXPECT_EQ(a.sinks, b.sinks);
    EXPECT_EQ(a.is_tree(), b.is_tree());
    EXPECT_EQ(a.resistors.size(), b.resistors.size());
    EXPECT_TRUE(b.validate().empty());

    // Aggregate electrical quantities survive to parse precision.
    const double rtol = 1e-9;
    EXPECT_NEAR(a.total_resistance(), b.total_resistance(),
                rtol * a.total_resistance());
    EXPECT_NEAR(a.total_ground_cap(), b.total_ground_cap(),
                rtol * a.total_ground_cap());
    EXPECT_NEAR(a.total_coupling_cap(), b.total_coupling_cap(),
                rtol * std::max(a.total_coupling_cap(), 1e-18));

    // Per-sink pin caps (what the driver NLDM lookup consumes).
    for (const auto sink : a.sinks)
      EXPECT_NEAR(a.ground_cap[sink], b.ground_cap[sink],
                  rtol * a.ground_cap[sink]);

    saw_non_tree = saw_non_tree || !a.is_tree();
    saw_coupling = saw_coupling || !a.couplings.empty();
  }
  // The population must actually exercise both hard cases.
  EXPECT_TRUE(saw_non_tree);
  EXPECT_TRUE(saw_coupling);
}

// ---------------------------------------------------------------------------
// Malformed-input hardening: every defect is reported through
// SpefParseResult::status with its line number, and the parser never throws.

struct MalformedCase {
  const char* label;
  const char* text;
  const char* expect_in_status;  // substring of status.message()
  int expect_line;               // line number named in the status
};

class SpefMalformed : public ::testing::TestWithParam<MalformedCase> {};

TEST_P(SpefMalformed, ReportsStatusWithLineNumber) {
  const MalformedCase& c = GetParam();
  std::istringstream in(c.text);
  const SpefParseResult result = parse_spef(in);
  ASSERT_FALSE(result.status.ok()) << c.label;
  EXPECT_EQ(result.status.code(), gnntrans::core::ErrorCode::kParseError);
  EXPECT_NE(result.status.message().find(c.expect_in_status), std::string::npos)
      << "status: " << result.status.message();
  EXPECT_NE(result.status.message().find(
                "line " + std::to_string(c.expect_line)),
            std::string::npos)
      << "status: " << result.status.message();
  EXPECT_FALSE(result.warnings.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Defects, SpefMalformed,
    ::testing::Values(
        MalformedCase{"truncated",
                      "*D_NET cut 3.0\n*CONN\n*I cut:0 I\n*I cut:1 O\n"
                      "*CAP\n1 cut:0 1.0\n",
                      "missing *END", 6},
        MalformedCase{"unknown_cap_unit", "*C_UNIT 1 NF\n",
                      "unknown capacitance unit 'NF'", 1},
        MalformedCase{"unknown_res_unit", "*SPEF \"x\"\n*R_UNIT 1 GOHM\n",
                      "unknown resistance unit 'GOHM'", 2},
        MalformedCase{"bad_unit_syntax", "*C_UNIT FF\n",
                      "needs '<multiplier> <unit>'", 1},
        MalformedCase{"duplicate_conn",
                      "*D_NET n1 3.0\n*CONN\n*I n1:0 I\n*I n1:1 O\n"
                      "*I n1:1 O\n*CAP\n1 n1:0 1.0\n2 n1:1 1.0\n"
                      "*RES\n1 n1:0 n1:1 10.0\n*END\n",
                      "duplicate *CONN definition for node n1:1", 5},
        MalformedCase{"second_driver",
                      "*D_NET n1 3.0\n*CONN\n*I n1:0 I\n*I n1:1 I\n"
                      "*CAP\n1 n1:0 1.0\n2 n1:1 1.0\n"
                      "*RES\n1 n1:0 n1:1 10.0\n*END\n",
                      "second driver terminal n1:1", 4},
        MalformedCase{"duplicate_cap",
                      "*D_NET n1 3.0\n*CONN\n*I n1:0 I\n*I n1:1 O\n"
                      "*CAP\n1 n1:0 1.0\n2 n1:0 1.0\n3 n1:1 1.0\n"
                      "*RES\n1 n1:0 n1:1 10.0\n*END\n",
                      "duplicate ground *CAP for node n1:0", 7},
        MalformedCase{"unterminated_net",
                      "*D_NET a 1.0\n*CONN\n*I a:0 I\n*CAP\n1 a:0 1.0\n"
                      "*D_NET b 1.0\n*CONN\n*END\n",
                      "*D_NET b starts before *END of a", 6}),
    [](const ::testing::TestParamInfo<MalformedCase>& info) {
      return info.param.label;
    });

TEST(Spef, UnitDirectivesScaleValues) {
  // PF caps and KOHM resistances must land in farads/ohms.
  std::istringstream in(
      "*C_UNIT 1 PF\n*R_UNIT 1 KOHM\n"
      "*D_NET n1 3.0\n*CONN\n*I n1:0 I\n*I n1:1 O\n"
      "*CAP\n1 n1:0 1.5\n2 n1:1 1.5\n*RES\n1 n1:0 n1:1 25.0\n*END\n");
  const SpefParseResult result = parse_spef(in);
  ASSERT_TRUE(result.status.ok()) << result.status.to_string();
  ASSERT_EQ(result.nets.size(), 1u);
  EXPECT_NEAR(result.nets[0].ground_cap[0], 1.5e-12, 1e-18);
  EXPECT_DOUBLE_EQ(result.nets[0].resistors[0].ohms, 25.0e3);
}

TEST(Spef, CleanRoundTripHasOkStatus) {
  const RcNet net = sample_net(9);
  std::istringstream in(to_spef(net));
  const SpefParseResult result = parse_spef(in);
  EXPECT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_TRUE(result.warnings.empty());
}

TEST(Spef, ForeignNodeNamesAreSkippedGracefully) {
  // A resistor referencing another net's node is ignored; net stays valid.
  std::istringstream in(
      "*D_NET n1 3.0\n*CONN\n*I n1:0 I\n*I n1:1 O\n"
      "*CAP\n1 n1:0 1.0\n2 n1:1 1.0\n"
      "*RES\n1 n1:0 n1:1 10.0\n2 n1:1 other:3 99.0\n*END\n");
  const SpefParseResult result = parse_spef(in);
  ASSERT_EQ(result.nets.size(), 1u);
  EXPECT_EQ(result.nets[0].resistors.size(), 1u);
}

}  // namespace
