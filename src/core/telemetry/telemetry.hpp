/// \file telemetry.hpp
/// Umbrella header for the observability subsystem: structured logging
/// (log.hpp), the sharded metrics registry (metrics.hpp), and trace-span
/// profiling (trace.hpp). Zero external dependencies; see DESIGN.md
/// "Telemetry" for the architecture and overhead budget.
#pragma once

#include "core/telemetry/log.hpp"
#include "core/telemetry/metrics.hpp"
#include "core/telemetry/trace.hpp"
