#include "features/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/serialize.hpp"

namespace gnntrans::features {

using rcnet::NodeId;

WireRecord make_record(rcnet::RcNet net, NetContext context,
                       sim::GoldenTimer& timer) {
  WireRecord rec;
  rec.non_tree = !net.is_tree();
  rec.raw = extract_features(net, context);

  const sim::TransientResult timing =
      timer.time_net(net, context.input_slew, context.driver_resistance);
  rec.slew_labels.reserve(timing.sinks.size());
  rec.delay_labels.reserve(timing.sinks.size());
  for (const sim::SinkTiming& st : timing.sinks) {
    rec.slew_labels.push_back(st.slew);
    rec.delay_labels.push_back(st.delay);
  }
  rec.net = std::move(net);
  rec.context = std::move(context);
  return rec;
}

namespace {

/// Column-wise mean/std over row-major data.
void fit_columns(const std::vector<const std::vector<float>*>& rows_list,
                 std::size_t dim, std::vector<double>& mean,
                 std::vector<double>& std_dev) {
  mean.assign(dim, 0.0);
  std_dev.assign(dim, 0.0);
  std::size_t count = 0;
  for (const auto* data : rows_list) {
    const std::size_t rows = data->size() / dim;
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < dim; ++c) mean[c] += (*data)[r * dim + c];
    count += rows;
  }
  if (count == 0) throw std::logic_error("Standardizer: no rows to fit");
  for (double& m : mean) m /= static_cast<double>(count);
  for (const auto* data : rows_list) {
    const std::size_t rows = data->size() / dim;
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < dim; ++c) {
        const double d = (*data)[r * dim + c] - mean[c];
        std_dev[c] += d * d;
      }
  }
  for (double& s : std_dev) {
    s = std::sqrt(s / static_cast<double>(count));
    if (s < 1e-9) s = 1.0;  // constant column passes through
  }
}

void fit_scalar(const std::vector<double>& values, double& mean, double& std_dev) {
  if (values.empty()) throw std::logic_error("Standardizer: no labels to fit");
  mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  std_dev = 0.0;
  for (double v : values) std_dev += (v - mean) * (v - mean);
  std_dev = std::sqrt(std_dev / static_cast<double>(values.size()));
  if (std_dev < 1e-18) std_dev = 1.0;
}

}  // namespace

void Standardizer::fit(const std::vector<WireRecord>& records) {
  std::vector<const std::vector<float>*> x_list, h_list;
  std::vector<double> slews, delays;
  for (const WireRecord& rec : records) {
    x_list.push_back(&rec.raw.x);
    h_list.push_back(&rec.raw.h);
    slews.insert(slews.end(), rec.slew_labels.begin(), rec.slew_labels.end());
    delays.insert(delays.end(), rec.delay_labels.begin(), rec.delay_labels.end());
  }
  fit_columns(x_list, kNodeFeatureCount, x_mean_, x_std_);
  fit_columns(h_list, kPathFeatureCount, h_mean_, h_std_);
  fit_scalar(slews, slew_mean_, slew_std_);
  fit_scalar(delays, delay_mean_, delay_std_);
}

double Standardizer::standardize_slew(double seconds) const noexcept {
  return (seconds - slew_mean_) / slew_std_;
}
double Standardizer::standardize_delay(double seconds) const noexcept {
  return (seconds - delay_mean_) / delay_std_;
}
double Standardizer::unstandardize_slew(double z) const noexcept {
  return z * slew_std_ + slew_mean_;
}
double Standardizer::unstandardize_delay(double z) const noexcept {
  return z * delay_std_ + delay_mean_;
}

namespace {

/// Builds all aggregation operators of a net for the model zoo.
void build_graph_operators(const rcnet::RcNet& net,
                           const sim::WireAnalysis& analysis,
                           nn::GraphSample& sample) {
  const std::size_t n = net.node_count();
  const rcnet::Adjacency adj = rcnet::build_adjacency(net);

  // Eq. (1): resistance-valued adjacency, row-normalized for stability.
  sample.weighted_adj = tensor::GraphMatrix(n, n);
  // GraphSage-classic: mean over neighbors.
  sample.mean_adj = tensor::GraphMatrix(n, n);
  for (NodeId v = 0; v < n; ++v) {
    const float inv_deg =
        adj[v].empty() ? 0.0f : 1.0f / static_cast<float>(adj[v].size());
    for (const rcnet::Neighbor& nb : adj[v]) {
      sample.weighted_adj.add(v, nb.node,
                              static_cast<float>(net.resistors[nb.resistor_index].ohms));
      sample.mean_adj.add(v, nb.node, inv_deg);
    }
  }
  sample.weighted_adj.row_normalize();

  // GCNII: D^{-1/2} (A + I) D^{-1/2} over the binary graph with self loops.
  sample.gcnii_adj = tensor::GraphMatrix(n, n);
  std::vector<float> inv_sqrt_deg(n);
  for (NodeId v = 0; v < n; ++v)
    inv_sqrt_deg[v] = 1.0f / std::sqrt(static_cast<float>(adj[v].size() + 1));
  for (NodeId v = 0; v < n; ++v) {
    sample.gcnii_adj.add(v, v, inv_sqrt_deg[v] * inv_sqrt_deg[v]);
    for (const rcnet::Neighbor& nb : adj[v])
      sample.gcnii_adj.add(v, nb.node, inv_sqrt_deg[v] * inv_sqrt_deg[nb.node]);
  }

  // Neighbor mask with self loops for masked attention.
  sample.attn_mask.assign(n * n, 0);
  for (NodeId v = 0; v < n; ++v) {
    sample.attn_mask[v * n + v] = 1;
    for (const rcnet::Neighbor& nb : adj[v]) sample.attn_mask[v * n + nb.node] = 1;
  }

  // Eq. (4) pooling matrix: mean over each path's nodes.
  const std::size_t p = analysis.paths.size();
  sample.path_pool = tensor::GraphMatrix(p, n);
  for (std::size_t q = 0; q < p; ++q) {
    const auto& nodes = analysis.paths[q].nodes;
    const float w = 1.0f / static_cast<float>(nodes.size());
    for (NodeId v : nodes) sample.path_pool.add(static_cast<std::uint32_t>(q), v, w);
  }
}

}  // namespace

nn::GraphSample Standardizer::make_sample(const WireRecord& record) const {
  if (!fitted()) throw std::logic_error("Standardizer: fit() before make_sample()");

  nn::GraphSample sample;
  sample.net_name = record.net.name;
  sample.non_tree = record.non_tree;
  sample.node_count = record.net.node_count();
  sample.path_count = record.raw.analysis.paths.size();

  // Standardize features.
  std::vector<float> x = record.raw.x;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::size_t c = i % kNodeFeatureCount;
    x[i] = static_cast<float>((x[i] - x_mean_[c]) / x_std_[c]);
  }
  std::vector<float> h = record.raw.h;
  for (std::size_t i = 0; i < h.size(); ++i) {
    const std::size_t c = i % kPathFeatureCount;
    h[i] = static_cast<float>((h[i] - h_mean_[c]) / h_std_[c]);
  }
  sample.x = tensor::Tensor::from_data(std::move(x), sample.node_count,
                                       kNodeFeatureCount);
  sample.h =
      tensor::Tensor::from_data(std::move(h), sample.path_count, kPathFeatureCount);

  build_graph_operators(record.net, record.raw.analysis, sample);

  // Labels.
  std::vector<float> slew_z(sample.path_count), delay_z(sample.path_count);
  for (std::size_t q = 0; q < sample.path_count; ++q) {
    slew_z[q] = static_cast<float>(standardize_slew(record.slew_labels[q]));
    delay_z[q] = static_cast<float>(standardize_delay(record.delay_labels[q]));
  }
  sample.slew_label =
      tensor::Tensor::from_data(std::move(slew_z), sample.path_count, 1);
  sample.delay_label =
      tensor::Tensor::from_data(std::move(delay_z), sample.path_count, 1);
  sample.slew_seconds = record.slew_labels;
  sample.delay_seconds = record.delay_labels;
  return sample;
}

void Standardizer::save(std::ostream& out) const {
  tensor::write_doubles(out, x_mean_);
  tensor::write_doubles(out, x_std_);
  tensor::write_doubles(out, h_mean_);
  tensor::write_doubles(out, h_std_);
  tensor::write_doubles(out, {slew_mean_, slew_std_, delay_mean_, delay_std_});
}

void Standardizer::load(std::istream& in) {
  x_mean_ = tensor::read_doubles(in);
  x_std_ = tensor::read_doubles(in);
  h_mean_ = tensor::read_doubles(in);
  h_std_ = tensor::read_doubles(in);
  const std::vector<double> labels = tensor::read_doubles(in);
  if (labels.size() != 4) throw std::runtime_error("Standardizer: bad label block");
  slew_mean_ = labels[0];
  slew_std_ = labels[1];
  delay_mean_ = labels[2];
  delay_std_ = labels[3];
}

std::vector<WireRecord> generate_wire_records(const WireDatasetConfig& config,
                                              const cell::CellLibrary& library) {
  std::mt19937_64 rng(config.seed);
  sim::GoldenTimer timer(config.sim_config);

  std::vector<WireRecord> records;
  records.reserve(config.net_count);
  std::size_t attempts = 0;
  while (records.size() < config.net_count && attempts < config.net_count * 3) {
    ++attempts;
    rcnet::RcNet net = rcnet::generate_net(
        config.net_config, rng, "net" + std::to_string(attempts));
    if (!net.validate().empty()) continue;
    NetContext ctx = random_context(library, net, rng);
    WireRecord rec = make_record(std::move(net), std::move(ctx), timer);
    // Drop records whose sinks failed to settle (extreme RC corner cases).
    const bool complete =
        std::all_of(rec.slew_labels.begin(), rec.slew_labels.end(),
                    [](double s) { return s > 0.0; });
    if (complete) records.push_back(std::move(rec));
  }
  return records;
}

std::vector<WireRecord> records_from_design(const netlist::Design& design,
                                            const cell::CellLibrary& library,
                                            sim::GoldenTimer& timer,
                                            const std::vector<double>* sta_slew) {
  std::vector<WireRecord> records;
  records.reserve(design.nets.size());
  for (const netlist::DesignNet& net : design.nets) {
    const cell::Cell& driver =
        library.at(design.instances[net.driver].cell_index);

    NetContext ctx;
    ctx.driver_resistance = driver.drive_resistance;
    ctx.driver_strength = driver.drive_strength;
    ctx.driver_function = static_cast<std::uint32_t>(driver.function);
    if (sta_slew != nullptr && net.driver < sta_slew->size()) {
      // True propagated driver output slew from a prior STA pass.
      ctx.input_slew = (*sta_slew)[net.driver];
    } else {
      // Approximate the driver's output transition with its NLDM surface under
      // a nominal 40ps input slew and the net's actual load.
      double load_cap = net.rc.total_ground_cap();
      for (netlist::InstanceId load : net.loads)
        load_cap += library.at(design.instances[load].cell_index).input_cap;
      ctx.input_slew = driver.arc.output_slew.lookup(4.0e-11, load_cap);
    }

    ctx.loads.reserve(net.loads.size());
    for (netlist::InstanceId load : net.loads) {
      const cell::Cell& lc = library.at(design.instances[load].cell_index);
      ctx.loads.push_back(
          {lc.drive_strength, static_cast<std::uint32_t>(lc.function), lc.input_cap});
    }
    records.push_back(make_record(net.rc, std::move(ctx), timer));
  }
  return records;
}

std::vector<nn::GraphSample> make_samples(const std::vector<WireRecord>& records,
                                          const Standardizer& standardizer) {
  std::vector<nn::GraphSample> samples;
  samples.reserve(records.size());
  for (const WireRecord& rec : records)
    samples.push_back(standardizer.make_sample(rec));
  return samples;
}

}  // namespace gnntrans::features
