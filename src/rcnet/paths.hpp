/// \file paths.hpp
/// Wire path enumeration (paper Def. 1 and Sec. II-B).
///
/// A wire path runs from the net source to one target sink. On a tree the path
/// is unique; on a non-tree net the paper defines it as the *shortest* path by
/// resistance, with remaining nodes/edges "on the branches".
#pragma once

#include <cstdint>
#include <vector>

#include "rcnet/rcnet.hpp"

namespace gnntrans::rcnet {

/// One source-to-sink timing path through the resistive graph.
struct WirePath {
  NodeId sink = 0;
  /// Nodes visited, source first, sink last.
  std::vector<NodeId> nodes;
  /// Resistor indices traversed; resistor_indices[i] joins nodes[i], nodes[i+1].
  std::vector<std::uint32_t> resistor_indices;

  /// Sum of resistance along the path.
  [[nodiscard]] double path_resistance(const RcNet& net) const;
};

/// Shortest-path tree by resistance, rooted at the net source.
///
/// parent[source] == source; unreachable nodes (invalid nets only) keep
/// parent == kNoParent. On a tree net this is simply the tree re-rooted at the
/// source, so tree-only algorithms (downstream cap, stage delay) generalize to
/// non-tree nets by running on this structure — exactly the paper's view that
/// the wire path is the shortest path and the rest are "branches".
struct ShortestPathTree {
  static constexpr NodeId kNoParent = static_cast<NodeId>(-1);
  std::vector<NodeId> parent;
  std::vector<std::uint32_t> parent_resistor;
  std::vector<double> distance;  ///< accumulated resistance from source
  /// Nodes in non-decreasing distance order (source first); a valid
  /// topological order of the SP tree.
  std::vector<NodeId> order;
};

/// Computes the shortest-path tree of \p net (Dijkstra, resistance weights).
[[nodiscard]] ShortestPathTree shortest_path_tree(const RcNet& net);

/// Enumerates the timing path for every sink of \p net (one WirePath per sink,
/// in sink order). Uses Dijkstra with resistance edge weights, which on a tree
/// degenerates to the unique tree path.
[[nodiscard]] std::vector<WirePath> enumerate_paths(const RcNet& net);

/// Counts *simple* source-to-sink paths in the resistive graph, summed over
/// sinks and saturated at \p cap. This is the quantity plotted in Fig. 2(b):
/// on a tree it equals the sink count; loops multiply it.
[[nodiscard]] std::uint64_t count_simple_paths(const RcNet& net,
                                               std::uint64_t cap = 1'000'000);

}  // namespace gnntrans::rcnet
