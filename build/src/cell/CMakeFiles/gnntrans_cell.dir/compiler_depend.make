# Empty compiler generated dependencies file for gnntrans_cell.
# This may be replaced when dependencies are built.
