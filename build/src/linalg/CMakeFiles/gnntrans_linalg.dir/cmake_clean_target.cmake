file(REMOVE_RECURSE
  "libgnntrans_linalg.a"
)
