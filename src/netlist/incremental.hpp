/// \file incremental.hpp
/// Incremental STA: re-time only the fanout cone of an edited instance.
///
/// The paper's closing claim is that a fast wire estimator enables
/// *incremental* timing optimization of routed designs. This engine supplies
/// the other half of that loop: after a cell swap (the classic sizing move),
/// only instances whose input arrival actually changed are re-evaluated, so
/// each optimization trial costs a cone, not a full-design pass.
///
/// Invariant (tested): after any sequence of swaps, arrivals equal a fresh
/// full run_sta over the mutated design with the same wire source.
#pragma once

#include <cstdint>
#include <vector>

#include "cell/library.hpp"
#include "netlist/design.hpp"
#include "netlist/sta.hpp"

namespace gnntrans::netlist {

/// Owns a mutable copy of the design plus per-pin timing state.
class IncrementalSta {
 public:
  /// Runs the initial full analysis.
  IncrementalSta(Design design, const cell::CellLibrary& library,
                 WireTimingSource& wire_source, StaConfig config = {});

  /// Current timing (always consistent with the current design state).
  [[nodiscard]] const StaResult& result() const noexcept { return result_; }
  [[nodiscard]] const Design& design() const noexcept { return design_; }

  /// Swaps \p instance to \p new_cell_index and re-times its cone.
  /// Returns the number of instances re-evaluated.
  std::size_t swap_cell(InstanceId instance, std::uint32_t new_cell_index);

  /// Worst endpoint arrival under the current state.
  [[nodiscard]] double worst_arrival() const;

  /// Total instances re-evaluated across all swaps (cone-size accounting).
  [[nodiscard]] std::size_t total_reevaluations() const noexcept {
    return total_reevaluations_;
  }

 private:
  /// Recomputes one instance's output timing and, if changed, re-times its
  /// driven net and updates load contributions. Returns true when the
  /// instance's output (arrival, slew) changed beyond tolerance.
  bool reevaluate(InstanceId v);

  /// Refreshes in_arrival/in_slew/critical bookkeeping of \p load from the
  /// stored per-net contributions.
  void refresh_input(InstanceId load);

  Design design_;
  const cell::CellLibrary& library_;
  WireTimingSource& wire_source_;
  StaConfig config_;
  StaResult result_;

  /// Per-net per-sink (arrival, slew) contribution at each load pin.
  struct Contribution {
    double arrival = -1.0;
    double slew = 0.0;
  };
  std::vector<std::vector<Contribution>> net_contrib_;  ///< [net][sink]

  /// Per-instance resolved input (max over contributions).
  std::vector<double> in_arrival_;
  std::vector<double> in_slew_;
  /// Nets feeding each instance: (net index, sink position).
  struct FaninPin {
    std::uint32_t net = 0;
    std::uint32_t sink = 0;
  };
  std::vector<std::vector<FaninPin>> fanin_pins_;

  std::size_t total_reevaluations_ = 0;
  static constexpr double kTolerance = 1e-16;  ///< seconds
};

}  // namespace gnntrans::netlist
