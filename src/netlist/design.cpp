#include "netlist/design.hpp"

namespace gnntrans::netlist {

std::size_t Design::non_tree_net_count() const {
  std::size_t count = 0;
  for (const DesignNet& net : nets)
    if (!net.rc.is_tree()) ++count;
  return count;
}

std::vector<std::string> Design::validate() const {
  std::vector<std::string> errors;
  if (driven_net.size() != instances.size())
    errors.push_back("driven_net size mismatch");
  for (std::size_t i = 0; i < nets.size(); ++i) {
    const DesignNet& net = nets[i];
    if (net.driver >= instances.size())
      errors.push_back("net " + std::to_string(i) + ": driver out of range");
    if (net.loads.size() != net.rc.sinks.size())
      errors.push_back("net " + std::to_string(i) + ": loads/sinks misaligned");
    for (InstanceId load : net.loads)
      if (load >= instances.size())
        errors.push_back("net " + std::to_string(i) + ": load out of range");
    const auto rc_errors = net.rc.validate();
    for (const std::string& e : rc_errors)
      errors.push_back("net " + std::to_string(i) + " rc: " + e);
  }
  for (std::size_t i = 0; i < driven_net.size() && i < instances.size(); ++i) {
    const std::uint32_t n = driven_net[i];
    if (n != kNoNet) {
      if (n >= nets.size())
        errors.push_back("instance " + std::to_string(i) + ": driven_net out of range");
      else if (nets[n].driver != i)
        errors.push_back("instance " + std::to_string(i) + ": driven_net back-pointer broken");
    }
  }
  return errors;
}

DesignStats compute_design_stats(const Design& design,
                                 const std::vector<bool>& seq_flags) {
  DesignStats s;
  s.name = design.name;
  s.cells = design.cell_count();
  s.nets = design.net_count();
  s.non_tree_nets = design.non_tree_net_count();
  for (bool f : seq_flags)
    if (f) ++s.ffs;
  s.constrained_paths = design.endpoints.size();
  return s;
}

}  // namespace gnntrans::netlist
