#include "core/estimator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "core/estimate_cache.hpp"
#include "core/fault_injector.hpp"
#include "core/telemetry/telemetry.hpp"
#include "nn/guard.hpp"
#include "sim/wire_analysis.hpp"
#include "tensor/serialize.hpp"

namespace gnntrans::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Serving metrics, registered once in the global registry. Handles are
/// lock-free to increment; scrape happens via MetricsRegistry exports.
struct ServingMetrics {
  telemetry::Counter nets = telemetry::MetricsRegistry::global().counter(
      "gnntrans_serving_nets_total", "Nets served by estimate_batch");
  telemetry::Counter paths = telemetry::MetricsRegistry::global().counter(
      "gnntrans_serving_paths_total", "Source-sink paths served");
  telemetry::Histogram net_latency =
      telemetry::MetricsRegistry::global().histogram(
          "gnntrans_serving_net_latency_seconds",
          telemetry::HistogramData::default_latency_bounds(),
          "Per-net inference wall latency");
  telemetry::Histogram batch_latency =
      telemetry::MetricsRegistry::global().histogram(
          "gnntrans_serving_batch_seconds",
          telemetry::HistogramData::default_latency_bounds(),
          "estimate_batch wall time");
  telemetry::Gauge arena_peak = telemetry::MetricsRegistry::global().gauge(
      "gnntrans_serving_arena_peak_bytes",
      "Max per-worker scratch-arena high-water mark");
  telemetry::Gauge pool_threads = telemetry::MetricsRegistry::global().gauge(
      "gnntrans_serving_pool_threads", "Workers used by the last batch");
  telemetry::Counter fallback_nets = telemetry::MetricsRegistry::global().counter(
      "gnntrans_serving_fallback_total",
      "Nets degraded to the analytic baseline");
  telemetry::Counter failed_nets = telemetry::MetricsRegistry::global().counter(
      "gnntrans_serving_failed_total",
      "Nets that produced no usable estimate (zeroed outputs)");
  telemetry::Counter slow_nets = telemetry::MetricsRegistry::global().counter(
      "gnntrans_serving_slow_nets_total",
      "Nets exceeding the slow-query latency budget");
  telemetry::Counter slew_clamped = telemetry::MetricsRegistry::global().counter(
      "gnntrans_serving_slew_clamped_total",
      "Non-failed sinks whose slew was raised to the NLDM floor for STA");
  /// Degraded nets by failure reason, indexed by ErrorCode.
  std::array<telemetry::Counter, kErrorCodeCount> degraded_reason =
      make_reason_counters();

  static std::array<telemetry::Counter, kErrorCodeCount> make_reason_counters() {
    std::array<telemetry::Counter, kErrorCodeCount> out;
    for (std::size_t c = 0; c < kErrorCodeCount; ++c)
      out[c] = telemetry::MetricsRegistry::global().counter(
          std::string("gnntrans_serving_degraded_") +
              to_string(static_cast<ErrorCode>(c)) + "_total",
          "Nets degraded with this failure reason");
    return out;
  }

  static const ServingMetrics& get() {
    static const ServingMetrics metrics;
    return metrics;
  }
};

/// Per-path Elmore-family estimates from an already-computed moment analysis.
/// Delay is the D2M metric at the sink (exact-moment based, defined on
/// non-tree nets); slew combines the input slew with the impulse-response
/// spread sqrt(2*m2 - m1^2) scaled by ln(9) (the 20/80 width of a one-pole
/// response), the classical two-moment slew metric. Shared by the degradation
/// ladder's fallback rung and the shadow scorer's reference re-time.
std::vector<PathEstimate> analytic_estimates(const sim::WireAnalysis& analysis,
                                             const features::NetContext& context) {
  constexpr double kLn9 = 2.1972245773362196;  // ln(9): 20/80 of one pole
  std::vector<PathEstimate> out;
  out.reserve(analysis.paths.size());
  for (const rcnet::WirePath& path : analysis.paths) {
    const rcnet::NodeId sink = path.sink;
    const double m1 = analysis.moments.m1[sink];
    const double m2 = analysis.moments.m2[sink];
    const double spread = std::sqrt(std::max(0.0, 2.0 * m2 - m1 * m1));
    PathEstimate pe;
    pe.sink = sink;
    pe.delay = std::max(0.0, analysis.d2m[sink]);
    pe.slew = std::sqrt(context.input_slew * context.input_slew +
                        kLn9 * kLn9 * spread * spread);
    pe.provenance = EstimateProvenance::kBaselineFallback;
    out.push_back(pe);
  }
  return out;
}

/// Analytic degradation target: runs the moment engine on \p net and derives
/// the Elmore/D2M estimates. Precondition: net.validate() is empty.
std::vector<PathEstimate> analytic_fallback(const rcnet::RcNet& net,
                                            const features::NetContext& context) {
  return analytic_estimates(sim::analyze_wire(net), context);
}

/// Shadow scorer: re-featurizes \p net from scratch (live feature sketches
/// must see exactly the serving featurization, and the separate extraction
/// keeps the served results bitwise-untouched), re-times it analytically from
/// the same moment analysis, and records per-sink model-vs-analytic residuals.
/// Never throws — a shadow failure must not affect serving.
void shadow_score(const rcnet::RcNet& net, const features::NetContext& context,
                  const std::vector<PathEstimate>& served) noexcept {
  try {
    telemetry::QualityMonitor& monitor = telemetry::QualityMonitor::global();
    const features::RawFeatures raw = features::extract_features(net, context);
    monitor.observe_features(raw.x.data(),
                             raw.x.size() / features::kNodeFeatureCount,
                             features::kNodeFeatureCount,
                             features::kQualityNodeFeatureBase);
    monitor.observe_features(raw.h.data(),
                             raw.h.size() / features::kPathFeatureCount,
                             features::kPathFeatureCount,
                             features::kQualityPathFeatureBase);
    const std::vector<PathEstimate> reference =
        analytic_estimates(raw.analysis, context);
    if (reference.size() != served.size()) return;  // topology raced an edit
    const bool non_tree = !net.is_tree();
    for (std::size_t q = 0; q < served.size(); ++q) {
      monitor.record_residual(non_tree, served[q].delay, reference[q].delay,
                              served[q].slew, reference[q].slew);
    }
    monitor.count_shadowed_net();
  } catch (...) {
    // Swallow: shadow scoring is advisory; the served estimates already left.
  }
}

/// Ladder bottom: one zeroed estimate per sink so callers still get a full
/// result vector (sinks in net order, like the model path).
std::vector<PathEstimate> failed_estimates(const rcnet::RcNet& net) {
  std::vector<PathEstimate> out;
  out.reserve(net.sinks.size());
  for (const rcnet::NodeId sink : net.sinks) {
    PathEstimate pe;
    pe.sink = sink;
    pe.provenance = EstimateProvenance::kFailed;
    out.push_back(pe);
  }
  return out;
}

std::string human_bytes(std::size_t bytes) {
  char buf[32];
  if (bytes >= 1024 * 1024)
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  else
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(bytes) / 1024.0);
  return buf;
}

}  // namespace

void InferenceStats::merge(const InferenceStats& other) {
  nets += other.nets;
  paths += other.paths;
  threads = std::max(threads, other.threads);
  wall_seconds += other.wall_seconds;
  nets_per_second =
      wall_seconds > 0.0 ? static_cast<double>(nets) / wall_seconds : 0.0;
  latency.merge(other.latency);
  p50_net_seconds = latency.quantile(0.50);
  p99_net_seconds = latency.quantile(0.99);
  arena_peak_bytes = std::max(arena_peak_bytes, other.arena_peak_bytes);
  arena_reused_buffers += other.arena_reused_buffers;
  arena_fresh_allocs += other.arena_fresh_allocs;
  model_nets += other.model_nets;
  fallback_nets += other.fallback_nets;
  failed_nets += other.failed_nets;
  cached_nets += other.cached_nets;
  slow_nets += other.slow_nets;
  slew_clamped += other.slew_clamped;
  for (std::size_t c = 0; c < kErrorCodeCount; ++c)
    degraded_by_reason[c] += other.degraded_by_reason[c];
}

std::string InferenceStats::summary() const {
  const std::size_t acquisitions = arena_reused_buffers + arena_fresh_allocs;
  const double reuse_pct =
      acquisitions > 0
          ? 100.0 * static_cast<double>(arena_reused_buffers) /
                static_cast<double>(acquisitions)
          : 0.0;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%zu nets (%zu paths) in %.3f s — %.0f nets/s on %zu "
                "thread%s; per-net p50 %.1f us, p99 %.1f us; arena peak %s, "
                "%.1f%% buffer reuse",
                nets, paths, wall_seconds, nets_per_second, threads,
                threads == 1 ? "" : "s", p50_net_seconds * 1e6,
                p99_net_seconds * 1e6, human_bytes(arena_peak_bytes).c_str(),
                reuse_pct);
  std::string out = buf;
  if (fallback_nets + failed_nets + slow_nets > 0) {
    std::snprintf(buf, sizeof(buf),
                  "; degraded %zu (%.2f%%: %zu baseline, %zu failed), %zu slow",
                  fallback_nets + failed_nets, 100.0 * degraded_fraction(),
                  fallback_nets, failed_nets, slow_nets);
    out += buf;
    bool first = true;
    for (std::size_t c = 0; c < kErrorCodeCount; ++c) {
      if (degraded_by_reason[c] == 0) continue;
      std::snprintf(buf, sizeof(buf), "%s%s=%zu", first ? " [" : ", ",
                    to_string(static_cast<ErrorCode>(c)),
                    degraded_by_reason[c]);
      out += buf;
      first = false;
    }
    if (!first) out += "]";
  }
  if (cached_nets > 0) {
    std::snprintf(buf, sizeof(buf), "; %zu cached", cached_nets);
    out += buf;
  }
  if (slew_clamped > 0) {
    std::snprintf(buf, sizeof(buf), "; %zu slew clamp%s", slew_clamped,
                  slew_clamped == 1 ? "" : "s");
    out += buf;
  }
  return out;
}

WireTimingEstimator WireTimingEstimator::train(
    const std::vector<features::WireRecord>& records, Options options) {
  if (records.empty())
    throw std::invalid_argument("WireTimingEstimator::train: no records");

  WireTimingEstimator est;
  est.standardizer_.fit(records);

  options.model.node_feature_dim = features::kNodeFeatureCount;
  options.model.path_feature_dim = features::kPathFeatureCount;
  est.model_ = nn::make_model(options.kind, options.model);

  const std::vector<nn::GraphSample> samples =
      features::make_samples(records, est.standardizer_);
  est.train_report_ = train_model(*est.model_, samples, options.train);

  // Quality baseline: the training distribution of every raw input feature,
  // sketched per column. Serving compares its live sketches against these to
  // compute per-feature PSI (telemetry::QualityMonitor), so the profile must
  // be built over exactly the featurization serving re-runs.
  est.baseline_.names = features::quality_feature_names();
  est.baseline_.sketches.assign(est.baseline_.names.size(),
                                telemetry::LogSketch());
  for (const features::WireRecord& rec : records) {
    const std::vector<float>& x = rec.raw.x;
    for (std::size_t r = 0; r * features::kNodeFeatureCount < x.size(); ++r)
      for (std::size_t c = 0; c < features::kNodeFeatureCount; ++c)
        est.baseline_.sketches[features::kQualityNodeFeatureBase + c].observe(
            static_cast<double>(x[r * features::kNodeFeatureCount + c]));
    const std::vector<float>& h = rec.raw.h;
    for (std::size_t r = 0; r * features::kPathFeatureCount < h.size(); ++r)
      for (std::size_t c = 0; c < features::kPathFeatureCount; ++c)
        est.baseline_.sketches[features::kQualityPathFeatureBase + c].observe(
            static_cast<double>(h[r * features::kPathFeatureCount + c]));
  }
  return est;
}

Expected<std::vector<PathEstimate>> WireTimingEstimator::run_model_path(
    const rcnet::RcNet& net, const features::NetContext& context,
    nn::Workspace* workspace, StageSeconds* stages) const {
  tensor::NoGradGuard no_grad;
  FaultInjector& inject = FaultInjector::global();

  // Build an unlabeled record: features only, labels zero. Any exception in
  // path enumeration / feature extraction is a per-net failure, not a batch
  // abort.
  features::WireRecord rec;
  rec.net = net;
  rec.context = context;
  {
    const auto t0 = Clock::now();
    const telemetry::TraceSpan span("featurize", "serving");
    try {
      if (inject.armed() && inject.should_fail(FaultSite::kFeaturize, net.name))
        throw std::runtime_error("injected featurization fault");
      rec.raw = features::extract_features(net, context);
    } catch (const std::invalid_argument& e) {
      // Caller contract violation, not a path-extraction fault. (The
      // loads/sinks misalignment case is pre-gated by estimate_batch with a
      // typed kInvalidArgument; this catch covers the single-net estimate()
      // entry and any future preconditions extract_features grows.)
      if (stages) stages->featurize += seconds_since(t0);
      return Status(ErrorCode::kInvalidNet, net.name + ": " + e.what());
    } catch (const std::exception& e) {
      if (stages) stages->featurize += seconds_since(t0);
      return Status(ErrorCode::kPathExtractionFailed,
                    net.name + ": " + e.what());
    }
    if (stages) stages->featurize += seconds_since(t0);
  }
  if (rec.raw.analysis.paths.size() != net.sinks.size())
    return Status(ErrorCode::kPathExtractionFailed,
                  net.name + ": enumerated " +
                      std::to_string(rec.raw.analysis.paths.size()) +
                      " paths for " + std::to_string(net.sinks.size()) +
                      " sinks");
  rec.non_tree = !net.is_tree();
  rec.slew_labels.assign(rec.raw.analysis.paths.size(), 0.0);
  rec.delay_labels.assign(rec.raw.analysis.paths.size(), 0.0);

  const auto t0 = Clock::now();
  nn::WirePrediction pred;
  std::size_t path_count = 0;
  try {
    const nn::GraphSample sample = standardizer_.make_sample(rec);
    path_count = sample.path_count;
    const telemetry::TraceSpan forward_span("forward", "serving");
    if (inject.armed() && inject.should_fail(FaultSite::kForward, net.name))
      throw std::runtime_error("injected forward fault");
    pred = model_->forward(sample, workspace);
    if (inject.armed() && inject.should_fail(FaultSite::kNonFinite, net.name))
      throw nn::NonFiniteActivationError("injected", 0, 0);
  } catch (const nn::NonFiniteActivationError& e) {
    if (stages) stages->forward += seconds_since(t0);
    return Status(ErrorCode::kNonFiniteActivation, net.name + ": " + e.what());
  } catch (const std::exception& e) {
    if (stages) stages->forward += seconds_since(t0);
    return Status(ErrorCode::kInternal, net.name + ": " + e.what());
  }
  if (stages) stages->forward += seconds_since(t0);

  std::vector<PathEstimate> out;
  out.reserve(path_count);
  for (std::size_t q = 0; q < path_count; ++q) {
    PathEstimate pe;
    pe.sink = rec.raw.analysis.paths[q].sink;
    pe.slew = standardizer_.unstandardize_slew(pred.slew(q, 0));
    pe.delay = standardizer_.unstandardize_delay(pred.delay(q, 0));
    out.push_back(pe);
  }
  return out;
}

std::vector<PathEstimate> WireTimingEstimator::estimate(
    const rcnet::RcNet& net, const features::NetContext& context) const {
  if (const auto errors = net.validate(); !errors.empty())
    throw std::invalid_argument("estimate: invalid net '" + net.name +
                                "': " + errors.front());
  auto result = run_model_path(net, context, nullptr, nullptr);
  if (!result) {
    if (result.status().code() == ErrorCode::kInvalidNet)
      throw std::invalid_argument("estimate: " + result.status().to_string());
    throw std::runtime_error("estimate: " + result.status().to_string());
  }
  return std::move(*result);
}

std::vector<std::vector<PathEstimate>> WireTimingEstimator::estimate_batch(
    std::span<const NetBatchItem> items, const BatchOptions& options,
    InferenceStats* stats) const {
  const telemetry::TraceSpan batch_span("estimate_batch", "serving");
  const auto start = Clock::now();
  std::vector<std::vector<PathEstimate>> results(items.size());
  std::vector<double> latency(items.size(), 0.0);
  std::vector<double> shadow_secs(items.size(), 0.0);

  ThreadPool* pool = options.pool;
  std::unique_ptr<ThreadPool> owned_pool;
  std::size_t threads = std::max<std::size_t>(1, options.threads);
  if (pool) {
    threads = pool->size();
  } else if (threads > 1) {
    owned_pool = std::make_unique<ThreadPool>(threads);
    pool = owned_pool.get();
  }

  std::vector<nn::Workspace> local_workspaces;
  std::vector<nn::Workspace>& workspaces =
      options.workspaces ? *options.workspaces : local_workspaces;
  if (workspaces.size() < threads) workspaces.resize(threads);

  // Snapshot arena counters so stats report this call's deltas even when the
  // caller reuses workspaces across batches.
  std::vector<tensor::ScratchArena::Stats> before(threads);
  for (std::size_t w = 0; w < threads; ++w) before[w] = workspaces[w].arena_stats();

  std::vector<NetOutcome> outcomes(items.size());

  const auto run_one = [&](std::size_t i, std::size_t worker) {
    const auto t0 = Clock::now();
    const rcnet::RcNet& net = *items[i].net;
    const features::NetContext& context = *items[i].context;
    NetOutcome& outcome = outcomes[i];
    FaultInjector& inject = FaultInjector::global();
    StageSeconds stages;

    // Head-sampled requests get their model work recorded as a span tagged
    // with the trace_id (bypassing the 1-in-N span sampler) plus a flow step
    // linking the batch span into the request's cross-thread lane.
    const telemetry::TraceContext trace =
        options.traces && i < options.traces->size()
            ? (*options.traces)[i]
            : telemetry::TraceContext{};
    const telemetry::TraceSpan net_span("net_model", "request", trace);
    if (net_span.active())
      telemetry::TraceRecorder::global().record_flow(
          telemetry::TracePhase::kFlowStep, "batch_model", "request",
          trace.trace_id);

    // Structural validity decides fallback eligibility below: the analytic
    // baseline needs a well-formed net just like the model does, so an
    // *injected* validation fault on a valid net still degrades gracefully.
    // With a cache attached, the net's content hash rides this same scan —
    // hashing adds no extra traversal.
    std::uint64_t net_hash = 0;
    const std::vector<std::string> errors =
        net.validate(options.cache ? &net_hash : nullptr);
    const bool structurally_valid = errors.empty();
    // Caller-contract gate: loads must align one-to-one with net.sinks
    // (features.hpp documents it; historically it was never checked here and
    // a misaligned context slid into featurization). Rejected *before* the
    // cache key is formed — a misaligned context content-addresses nothing —
    // and before featurization, with no analytic fallback: timing the net
    // under a wrong context would be a confidently wrong answer.
    const bool context_valid = context.loads.size() == net.sinks.size();

    // Degradation ladder: the first rung that drops records why. Fault sites
    // are consulted in ladder order with short-circuiting, so a degraded net
    // consumes exactly one injection trigger (counter exactness in tests).
    Status failure;
    if ((options.deadline_seconds > 0.0 &&
         seconds_since(start) > options.deadline_seconds) ||
        (inject.armed() &&
         inject.should_fail(FaultSite::kDeadline, net.name))) {
      failure = Status(ErrorCode::kDeadlineExceeded,
                       net.name + ": started past the batch deadline");
    } else if (!structurally_valid) {
      failure = Status(ErrorCode::kInvalidNet, net.name + ": " + errors.front());
    } else if (!context_valid) {
      failure = Status(ErrorCode::kInvalidArgument,
                       net.name + ": context.loads has " +
                           std::to_string(context.loads.size()) +
                           " entries for " +
                           std::to_string(net.sinks.size()) + " sinks");
    } else if (inject.armed() &&
               inject.should_fail(FaultSite::kValidate, net.name)) {
      failure = Status(ErrorCode::kInvalidNet,
                       net.name + ": injected validation fault");
    }

    // Content-addressed lookup before the model path: a hit returns the
    // stored bytes of a prior model pass (bitwise identical values, tagged
    // kCached) and skips featurize+forward entirely. Only formed after every
    // gate above, so invalid/deadline nets never touch the cache.
    bool cache_hit = false;
    CacheKey cache_key;
    if (failure.ok() && options.cache) {
      cache_key =
          EstimateCache::make_key(net_hash, features::content_hash(context));
      if (options.cache->lookup(cache_key, &results[i])) {
        cache_hit = true;
        outcome.provenance = EstimateProvenance::kCached;
      }
    }

    if (failure.ok() && !cache_hit) {
      auto model_result =
          run_model_path(net, context, &workspaces[worker], &stages);
      if (model_result) {
        results[i] = std::move(*model_result);
        outcome.provenance = EstimateProvenance::kModel;
        // Memoize only full model results: a fallback or failure must re-run
        // the ladder next time (the fault may be transient), and caching it
        // would freeze a degraded answer for content the model can serve.
        if (options.cache) options.cache->insert(cache_key, results[i]);
      } else {
        failure = model_result.status();
      }
    }

    if (!failure.ok()) {
      outcome.error = failure.code();
      outcome.message = failure.message();
      bool fell_back = false;
      if (options.fallback == FallbackPolicy::kAnalytic && structurally_valid &&
          context_valid) {
        const auto fb0 = Clock::now();
        try {
          results[i] = analytic_fallback(net, context);
          fell_back = true;
        } catch (const std::exception& e) {
          outcome.message += "; fallback: ";
          outcome.message += e.what();
        }
        stages.fallback += seconds_since(fb0);
      }
      if (!fell_back) results[i] = failed_estimates(net);
      outcome.provenance = fell_back ? EstimateProvenance::kBaselineFallback
                                     : EstimateProvenance::kFailed;
    }

    latency[i] = seconds_since(t0);
    outcome.net_seconds = latency[i];
    outcome.featurize_seconds = stages.featurize;
    outcome.forward_seconds = stages.forward;
    outcome.fallback_seconds = stages.fallback;

    // Shadow scoring: deterministic pure-hash sample of model-served nets,
    // re-timed against the analytic baseline. Runs after latency[i] is taken
    // so serving latency metrics exclude the shadow's own cost; self-times
    // into shadow_secs for the batch-level overhead controller.
    telemetry::QualityMonitor& quality = telemetry::QualityMonitor::global();
    if (outcome.provenance == EstimateProvenance::kModel && quality.active() &&
        quality.should_shadow(net.name)) {
      const auto s0 = Clock::now();
      shadow_score(net, context, results[i]);
      shadow_secs[i] = seconds_since(s0);
    }

    if (options.slow_net_warn_seconds > 0.0 &&
        latency[i] > options.slow_net_warn_seconds) {
      outcome.slow = true;
      GNNTRANS_LOG_WARN(
          "serving",
          "slow net '%s': %.1f us total (budget %.1f us) — featurize %.1f us, "
          "forward %.1f us, fallback %.1f us [%s]",
          net.name.c_str(), latency[i] * 1e6,
          options.slow_net_warn_seconds * 1e6, stages.featurize * 1e6,
          stages.forward * 1e6, stages.fallback * 1e6,
          to_string(outcome.provenance));
    }

    telemetry::FlightRecorder& flight = telemetry::FlightRecorder::global();
    if (flight.enabled()) {
      telemetry::FlightRecord fr;
      fr.set_net(net.name);
      fr.set_outcome(to_string(outcome.provenance));
      if (outcome.error != ErrorCode::kOk)
        fr.set_error(to_string(outcome.error));
      fr.featurize_us = static_cast<float>(stages.featurize * 1e6);
      fr.forward_us = static_cast<float>(stages.forward * 1e6);
      fr.fallback_us = static_cast<float>(stages.fallback * 1e6);
      fr.total_us = static_cast<float>(latency[i] * 1e6);
      fr.arena_peak_bytes = static_cast<std::uint32_t>(std::min<std::size_t>(
          workspaces[worker].arena_stats().peak_bytes, UINT32_MAX));
      fr.slow = outcome.slow ? 1 : 0;
      fr.degraded =
          outcome.provenance == EstimateProvenance::kBaselineFallback ||
                  outcome.provenance == EstimateProvenance::kFailed
              ? 1
              : 0;
      flight.record(fr);
    }
  };
  if (threads == 1) {
    for (std::size_t i = 0; i < items.size(); ++i) run_one(i, 0);
  } else {
    pool->parallel_for(items.size(), run_one);
  }

  // Ladder tallies (single-threaded epilogue; outcomes are per-net slots).
  // Identity preserved with the cache on: every net lands in exactly one of
  // model/fallback/failed/cached, so the four always sum to the batch size.
  std::size_t model_nets = 0, fallback_nets = 0, failed_nets = 0,
              cached_nets = 0, slow_nets = 0;
  std::array<std::size_t, kErrorCodeCount> degraded_by_reason{};
  for (const NetOutcome& o : outcomes) {
    switch (o.provenance) {
      case EstimateProvenance::kModel: ++model_nets; break;
      case EstimateProvenance::kBaselineFallback: ++fallback_nets; break;
      case EstimateProvenance::kFailed: ++failed_nets; break;
      case EstimateProvenance::kCached: ++cached_nets; break;
    }
    if (o.provenance == EstimateProvenance::kBaselineFallback ||
        o.provenance == EstimateProvenance::kFailed)
      ++degraded_by_reason[static_cast<std::size_t>(o.error)];
    if (o.slow) ++slow_nets;
  }

  const double wall = seconds_since(start);
  std::size_t total_paths = 0;
  for (const auto& r : results) total_paths += r.size();
  std::size_t peak_bytes = 0;
  for (std::size_t w = 0; w < threads; ++w)
    peak_bytes = std::max(peak_bytes, workspaces[w].arena_stats().peak_bytes);

  // Publish to the process-global registry regardless of whether the caller
  // asked for per-call stats — dashboards see every batch.
  const ServingMetrics& metrics = ServingMetrics::get();
  metrics.nets.inc(items.size());
  metrics.paths.inc(total_paths);
  for (const double s : latency) metrics.net_latency.observe(s);
  metrics.batch_latency.observe(wall);
  metrics.arena_peak.set_max(static_cast<double>(peak_bytes));
  metrics.pool_threads.set(static_cast<double>(threads));
  if (fallback_nets > 0) metrics.fallback_nets.inc(fallback_nets);
  if (failed_nets > 0) metrics.failed_nets.inc(failed_nets);
  if (slow_nets > 0) metrics.slow_nets.inc(slow_nets);
  for (std::size_t c = 0; c < kErrorCodeCount; ++c)
    if (degraded_by_reason[c] > 0)
      metrics.degraded_reason[c].inc(degraded_by_reason[c]);

  // Overhead controller: the serving path opens ~2 spans per net (featurize
  // + forward) plus the batch span; feed that offered load and this batch's
  // wall time to the adaptive sampler so tracing stays within budget.
  if (!items.empty() && wall > 0.0)
    telemetry::TraceRecorder::global().adapt(
        2.0 * static_cast<double>(items.size()) + 1.0, wall);

  // Shadow budget controller, same cadence: the summed self-timed shadow cost
  // of this batch moves the effective sampling rate *between* batches only,
  // so within-batch sampling decisions stay pure functions of (seed, name).
  {
    telemetry::QualityMonitor& quality = telemetry::QualityMonitor::global();
    if (quality.active() && !items.empty() && wall > 0.0) {
      double shadow_total = 0.0;
      for (const double s : shadow_secs) shadow_total += s;
      quality.observe_shadow_cost(shadow_total, wall);
    }
  }

  if (stats) {
    *stats = InferenceStats{};
    stats->nets = items.size();
    stats->paths = total_paths;
    stats->threads = threads;
    stats->wall_seconds = wall;
    stats->nets_per_second =
        stats->wall_seconds > 0.0
            ? static_cast<double>(stats->nets) / stats->wall_seconds
            : 0.0;
    for (const double s : latency) stats->latency.observe(s);
    stats->p50_net_seconds = stats->latency.quantile(0.50);
    stats->p99_net_seconds = stats->latency.quantile(0.99);
    stats->arena_peak_bytes = peak_bytes;
    for (std::size_t w = 0; w < threads; ++w) {
      const tensor::ScratchArena::Stats after = workspaces[w].arena_stats();
      stats->arena_reused_buffers += after.reused - before[w].reused;
      stats->arena_fresh_allocs += after.allocated - before[w].allocated;
    }
    stats->model_nets = model_nets;
    stats->fallback_nets = fallback_nets;
    stats->failed_nets = failed_nets;
    stats->cached_nets = cached_nets;
    stats->slow_nets = slow_nets;
    stats->degraded_by_reason = degraded_by_reason;
  }
  if (options.outcomes) *options.outcomes = std::move(outcomes);
  return results;
}

Evaluation WireTimingEstimator::evaluate(
    const std::vector<features::WireRecord>& records) const {
  const std::vector<nn::GraphSample> samples =
      features::make_samples(records, standardizer_);
  return evaluate_model(
      *model_, samples,
      [this](double z) { return standardizer_.unstandardize_slew(z); },
      [this](double z) { return standardizer_.unstandardize_delay(z); });
}

void WireTimingEstimator::save(std::ostream& out) const {
  // v2 = v1 (standardizer + model) with the quality baseline appended; the
  // loader still accepts v1 files (no drift profile).
  tensor::write_header(out, "GNNTRANS_ESTIMATOR", 2);
  standardizer_.save(out);
  nn::save_model(out, *model_);
  baseline_.save(out);
}

void WireTimingEstimator::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  save(out);
}

WireTimingEstimator WireTimingEstimator::load(std::istream& in) {
  const std::uint32_t version = tensor::read_header(in, "GNNTRANS_ESTIMATOR");
  if (version != 1 && version != 2) {
    throw UnsupportedCheckpointError(
        Status(ErrorCode::kUnsupportedFormat,
               "estimator checkpoint version " + std::to_string(version) +
                   " (this build reads v1 and v2)"));
  }
  WireTimingEstimator est;
  est.standardizer_.load(in);
  est.model_ = nn::load_model(in);
  if (version >= 2) est.baseline_.load(in);  // v1: no drift profile
  return est;
}

WireTimingEstimator WireTimingEstimator::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return load(in);
}

EstimatorWireSource::EstimatorWireSource(const WireTimingEstimator& estimator,
                                         const netlist::Design& design,
                                         const cell::CellLibrary& library,
                                         std::size_t threads)
    : estimator_(estimator), design_(&design), library_(library) {
  rebind(design);
  set_threads(threads);
}

void EstimatorWireSource::rebind(const netlist::Design& design) {
  design_ = &design;
  net_by_name_.clear();
  net_by_name_.reserve(design.nets.size());
  for (std::size_t i = 0; i < design.nets.size(); ++i)
    net_by_name_.emplace(design.nets[i].rc.name, i);
}

void EstimatorWireSource::set_threads(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  if (threads == threads_) return;
  threads_ = threads;
  if (pool_) pool_->resize(threads_);  // else created lazily at the next batch
  // Trim per-worker workspaces above the new count so a shrink releases
  // their arenas instead of pinning the peak-size memory forever; growth
  // happens lazily inside estimate_batch.
  if (workspaces_.size() > threads_) workspaces_.resize(threads_);
}

EstimatorWireSource::~EstimatorWireSource() = default;

void EstimatorWireSource::enable_cache(const EstimateCacheConfig& config) {
  cache_ = std::make_unique<EstimateCache>(config);
}

void EstimatorWireSource::enable_autoscale(const AutoscalerConfig& config) {
  autoscaler_ = std::make_unique<PoolAutoscaler>(config);
  // Start inside the controller's bounds; the first decide() would force the
  // move anyway, this just avoids one oversized/undersized batch.
  set_threads(std::clamp(threads_, autoscaler_->config().min_threads,
                         autoscaler_->config().max_threads));
}

features::NetContext EstimatorWireSource::context_for(
    const rcnet::RcNet& net, double input_slew,
    double driver_resistance) const {
  features::NetContext ctx;
  ctx.input_slew = input_slew;
  ctx.driver_resistance = driver_resistance;

  const auto it = net_by_name_.find(net.name);
  if (it != net_by_name_.end()) {
    const netlist::DesignNet& dnet = design_->nets[it->second];
    const cell::Cell& driver =
        library_.at(design_->instances[dnet.driver].cell_index);
    ctx.driver_strength = driver.drive_strength;
    ctx.driver_function = static_cast<std::uint32_t>(driver.function);
    for (netlist::InstanceId load : dnet.loads) {
      const cell::Cell& lc = library_.at(design_->instances[load].cell_index);
      ctx.loads.push_back({lc.drive_strength,
                           static_cast<std::uint32_t>(lc.function),
                           lc.input_cap});
    }
  } else {
    // Unknown net (standalone use): neutral load context.
    ctx.loads.assign(net.sinks.size(), features::SinkLoad{});
  }
  return ctx;
}

std::vector<sim::SinkTiming> to_sink_timings(
    const std::vector<PathEstimate>& estimates, std::size_t* clamped) {
  constexpr double kSlewFloor = 1e-12;  // guards downstream NLDM lookups
  std::vector<sim::SinkTiming> out;
  out.reserve(estimates.size());
  for (const PathEstimate& pe : estimates) {
    sim::SinkTiming st;
    st.sink = pe.sink;
    st.delay = pe.delay;
    st.slew = pe.slew;
    // A failed path carries no estimate: hand its zeros to STA *unsettled*
    // so arrivals downstream are flagged, and leave the values unclamped —
    // clamping would dress a failure up as a plausible timing.
    st.settled = pe.provenance != EstimateProvenance::kFailed;
    if (st.settled && st.slew < kSlewFloor) {
      st.slew = kSlewFloor;
      if (clamped) ++*clamped;  // degenerate model slews are counted, not hidden
    }
    out.push_back(st);
  }
  return out;
}

std::vector<sim::SinkTiming> EstimatorWireSource::time_net(
    const rcnet::RcNet& net, double input_slew, double driver_resistance) {
  const features::NetContext ctx =
      context_for(net, input_slew, driver_resistance);
  std::size_t clamped = 0;
  auto out = to_sink_timings(estimator_.estimate(net, ctx), &clamped);
  if (clamped > 0) {
    stats_.slew_clamped += clamped;
    ServingMetrics::get().slew_clamped.inc(clamped);
  }
  return out;
}

std::vector<std::vector<sim::SinkTiming>> EstimatorWireSource::time_nets(
    std::span<const netlist::WireTimingRequest> requests) {
  if (autoscaler_) {
    const AutoscaleDecision d = autoscaler_->decide(requests.size(), threads_);
    if (d.resized()) set_threads(d.target);  // pool + workspaces in lockstep
  }

  std::vector<features::NetContext> contexts;
  contexts.reserve(requests.size());
  std::vector<NetBatchItem> items;
  items.reserve(requests.size());
  for (const netlist::WireTimingRequest& r : requests) {
    contexts.push_back(
        context_for(*r.net, r.input_slew, r.driver_resistance));
    items.push_back({r.net, &contexts.back()});
  }

  if (threads_ > 1 && !pool_) pool_ = std::make_unique<ThreadPool>(threads_);
  BatchOptions options = serving_options_;  // degradation/deadline/slow-log
  options.threads = threads_;
  options.pool = threads_ > 1 ? pool_.get() : nullptr;
  options.workspaces = &workspaces_;
  options.cache = cache_.get();  // content-addressed memo (enable_cache)
  std::vector<NetOutcome> outcomes;
  options.outcomes = &outcomes;

  InferenceStats batch_stats;
  const std::vector<std::vector<PathEstimate>> estimates =
      estimator_.estimate_batch(items, options, &batch_stats);
  if (autoscaler_) autoscaler_->observe(batch_stats);

  std::vector<std::vector<sim::SinkTiming>> out;
  out.reserve(estimates.size());
  std::size_t clamped = 0;
  for (std::size_t i = 0; i < estimates.size(); ++i) {
    // A net that fell off the whole degradation ladder must never feed a
    // silent delay=0/settled arrival into STA: its sinks go in unsettled and
    // the failure is WARN-logged with the ladder's reason.
    if (i < outcomes.size() &&
        outcomes[i].provenance == EstimateProvenance::kFailed)
      GNNTRANS_LOG_WARN(
          "sta", "net '%s' failed wire timing (%s: %s); sinks handed to STA "
          "unsettled",
          requests[i].net->name.c_str(), to_string(outcomes[i].error),
          outcomes[i].message.c_str());
    out.push_back(to_sink_timings(estimates[i], &clamped));
  }
  if (clamped > 0) {
    batch_stats.slew_clamped = clamped;
    ServingMetrics::get().slew_clamped.inc(clamped);
  }
  stats_.merge(batch_stats);
  return out;
}

}  // namespace gnntrans::core
