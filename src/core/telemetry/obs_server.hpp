/// \file obs_server.hpp
/// Live observability endpoint: a minimal HTTP/1.1 server over POSIX sockets
/// (zero external dependencies) that makes the telemetry subsystem scrapable
/// while the process serves traffic.
///
/// Endpoints (GET only, Connection: close, no keep-alive):
///   /metrics       Prometheus text exposition of the global MetricsRegistry
///   /metrics.json  the same registry as one JSON document
///   /healthz       200 "ok" while the process is alive
///   /readyz        200 "ready" once a model is loaded AND the lifetime
///                  serving failure rate is under the configured threshold
///                  AND the quality monitor reports no drift/residual alert;
///                  503 with the reason otherwise
///   /buildinfo     build/version/pid/uptime JSON
///   /flight        recent per-net flight records (FlightRecorder JSON);
///                  ?n=<limit> keeps the newest N per list, ?net=<name>
///                  filters to one net
///   /quality       model-quality state (QualityMonitor JSON: shadow residual
///                  quantiles, per-feature PSI, degradation verdict)
///   /tracez        slowest retained request traces with their full stage
///                  breakdown (RequestTraceStore JSON); ?n=<limit> caps the
///                  list — resolves the trace_ids exported as /metrics
///                  histogram exemplars
///
/// One background thread accepts and answers sequentially — a scrape every
/// few seconds, not a web service. Requests are bounded in size and time;
/// shutdown is graceful via a self-pipe the poll loop watches, so stop()
/// never races an in-flight accept.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace gnntrans::telemetry {

/// Process-wide readiness flag: the CLI (or any embedder) sets it once a
/// model is loaded/trained. /readyz answers 503 until then.
void set_model_ready(bool ready) noexcept;
[[nodiscard]] bool model_ready() noexcept;

struct ObsServerConfig {
  std::string addr = "127.0.0.1";  ///< dotted-quad bind address
  std::uint16_t port = 0;          ///< 0 = ephemeral; read back via port()
  int backlog = 16;
  std::size_t max_request_bytes = 8192;  ///< 413 beyond this
  int request_timeout_ms = 5000;         ///< connection dropped beyond this
  /// /readyz flips to 503 when lifetime failed/served exceeds this fraction.
  double max_failure_rate = 0.5;
};

/// The scrape server. start() binds + spawns the thread; the destructor (or
/// stop()) shuts it down gracefully.
class ObsServer {
 public:
  explicit ObsServer(ObsServerConfig config = {});
  ~ObsServer();
  ObsServer(const ObsServer&) = delete;
  ObsServer& operator=(const ObsServer&) = delete;

  /// Binds, listens, spawns the serving thread. Throws std::runtime_error
  /// on an unparseable address or a failed socket/bind/listen.
  void start();

  /// Graceful shutdown: wakes the poll loop via the self-pipe and joins.
  /// Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Actual bound port (resolves port 0 after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }

  [[nodiscard]] const ObsServerConfig& config() const noexcept {
    return config_;
  }

 private:
  void serve_loop();
  void handle_connection(int fd);

  ObsServerConfig config_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< self-pipe: stop() writes, loop polls
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace gnntrans::telemetry
