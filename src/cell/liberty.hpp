/// \file liberty.hpp
/// Liberty-subset (.lib) writer and parser for cell libraries.
///
/// Real flows characterize cells into Liberty files; the paper's gate timing
/// comes from "lookup tables in cell libraries". This module round-trips the
/// synthetic library through the Liberty group syntax so users can inspect it
/// with standard tooling or substitute their own characterization:
///
///   library (name) {
///     cell (INV_X1) {
///       drive_strength : 1;
///       pin (A) { direction : input; capacitance : <ff>; }
///       pin (Y) {
///         direction : output;
///         timing () {
///           cell_rise (tbl) { index_1(...); index_2(...); values(...); }
///           rise_transition (tbl) { ... }
///         }
///       }
///     }
///   }
///
/// Units: time ps, capacitance fF, resistance ohm (recorded in the header).
/// Unknown groups/attributes are skipped with a warning, as a real reader
/// must.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "cell/library.hpp"

namespace gnntrans::cell {

/// Writes \p library in the Liberty subset.
void write_liberty(std::ostream& out, const CellLibrary& library,
                   const std::string& name = "gnntrans");

/// Convenience: Liberty text of \p library.
[[nodiscard]] std::string to_liberty(const CellLibrary& library);

/// Parse outcome.
struct LibertyParseResult {
  std::vector<Cell> cells;
  std::vector<std::string> warnings;
};

/// Parses a Liberty-subset document. Malformed cells are dropped with a
/// warning; a syntactically broken stream throws std::runtime_error.
[[nodiscard]] LibertyParseResult parse_liberty(std::istream& in);

/// Builds a CellLibrary from parsed cells (order preserved).
[[nodiscard]] CellLibrary library_from_cells(std::vector<Cell> cells);

}  // namespace gnntrans::cell
