/// \file estimate_cache.hpp
/// Content-addressed estimate cache (ROADMAP "scale-out" item, in-process
/// half): a sharded memo map from (RC content, timing context) to the model's
/// PathEstimates.
///
/// Keying is *content addressing*: the 128-bit key is a pure function of the
/// net's parasitics (RcNet::validate()'s content hash — topology plus every
/// element value by raw double bit pattern) and the full timing context
/// (features::content_hash — input slew, driver resistance/strength/function,
/// every SinkLoad). Nothing is keyed by name, so two identical nets share an
/// entry, and any edit — an ECO reroute, a resized driver, a one-ULP slew
/// change — lands on a new key. Invalidation is free: stale entries are
/// simply never addressed again and age out under eviction.
///
/// A hit returns the stored estimates bitwise-identical to recomputation
/// (they *are* the recomputation's bytes), re-tagged EstimateProvenance::
/// kCached. Only model-served results are cached; fallback and failed nets
/// always re-run the ladder.
///
/// Concurrency: entries hash-partition across cache-line-padded shards, each
/// with its own mutex, so concurrent lookups from a thread pool contend only
/// within a shard. Capacity is byte-bounded per shard; over budget the shard
/// evicts by CLOCK second-chance (a ref bit set on hit buys one sweep of
/// grace). gnntrans_cache_* metrics and a flight-recorder event on eviction
/// pressure make the cache's behavior observable in production.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "core/estimator.hpp"

namespace gnntrans::core {

/// 128-bit content key: the finalized net-content and context hashes side by
/// side. Distinct inputs collide only if *both* 64-bit halves collide.
struct CacheKey {
  std::uint64_t net = 0;  ///< RcNet::validate() content hash
  std::uint64_t ctx = 0;  ///< features::content_hash(NetContext)

  [[nodiscard]] bool operator==(const CacheKey& other) const noexcept {
    return net == other.net && ctx == other.ctx;
  }
};

struct EstimateCacheConfig {
  /// Total byte budget across all shards (approximate resident size of the
  /// stored estimates plus per-entry bookkeeping).
  std::size_t capacity_bytes = 64ull << 20;  // 64 MiB
  /// Shard count; rounded up to a power of two, at least 1.
  std::size_t shards = 16;
};

/// Cumulative counters plus a point-in-time residency snapshot.
struct EstimateCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t inserted_bytes = 0;  ///< cumulative bytes ever inserted
  std::uint64_t resident_bytes = 0;
  std::uint64_t entries = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class EstimateCache {
 public:
  explicit EstimateCache(EstimateCacheConfig config = {});
  ~EstimateCache();
  EstimateCache(const EstimateCache&) = delete;
  EstimateCache& operator=(const EstimateCache&) = delete;

  /// Combines the two finalized content hashes into a key.
  [[nodiscard]] static CacheKey make_key(std::uint64_t net_content_hash,
                                         std::uint64_t context_hash) noexcept {
    return CacheKey{net_content_hash, context_hash};
  }

  /// On hit, overwrites \p out with the stored estimates (provenance already
  /// kCached) and refreshes the entry's second-chance bit. \p out is
  /// untouched on miss.
  [[nodiscard]] bool lookup(const CacheKey& key,
                            std::vector<PathEstimate>* out);

  /// Stores a copy of \p paths re-tagged kCached, evicting CLOCK victims
  /// first if the shard is over its byte budget. An entry larger than one
  /// whole shard's budget is dropped rather than thrashing the shard empty.
  /// Racing inserts of the same key keep the first copy (identical bytes by
  /// construction — the key is the content).
  void insert(const CacheKey& key, const std::vector<PathEstimate>& paths);

  /// Aggregated over all shards. Counters are exact; residency is a
  /// consistent-per-shard snapshot.
  [[nodiscard]] EstimateCacheStats stats() const;

  /// Drops every entry (counters are kept — they are cumulative).
  void clear();

  [[nodiscard]] const EstimateCacheConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shard_mask_ + 1;
  }
  /// Shard a key routes to (exposed so tests can hammer one shard).
  [[nodiscard]] std::size_t shard_index(const CacheKey& key) const noexcept;

 private:
  struct Shard;

  EstimateCacheConfig config_;
  std::size_t shard_mask_ = 0;    ///< shard_count - 1 (power of two)
  std::size_t shard_budget_ = 0;  ///< capacity_bytes / shard_count
  std::unique_ptr<Shard[]> shards_;

  // Cumulative counters (relaxed; exact because every op increments once).
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> inserted_bytes_{0};
};

}  // namespace gnntrans::core
