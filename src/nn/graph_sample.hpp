/// \file graph_sample.hpp
/// Model-ready representation of one RC net (paper Sec. III-B, Fig. 5).
///
/// A sample bundles the node feature matrix X, path feature matrix H, the
/// weighted adjacency in the aggregation forms each model family consumes,
/// the per-path pooling operator, and standardized labels. Built by
/// features::build_sample(); consumed by every model in models.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace gnntrans::nn {

/// One net as a training/inference sample.
struct GraphSample {
  std::string net_name;
  bool non_tree = false;
  std::size_t node_count = 0;
  std::size_t path_count = 0;

  tensor::Tensor x;  ///< [N, dx] node features (standardized, no grad)
  tensor::Tensor h;  ///< [P, dh] path features (standardized, no grad)

  /// Eq. (1) aggregation: resistance-weighted adjacency, row-normalized.
  tensor::GraphMatrix weighted_adj;
  /// GraphSage-classic aggregation: mean over neighbors (binary adjacency).
  tensor::GraphMatrix mean_adj;
  /// GCNII propagation: D^{-1/2} (A + I) D^{-1/2}.
  tensor::GraphMatrix gcnii_adj;
  /// N*N neighbor mask (self included) for neighbor-restricted attention.
  std::vector<std::uint8_t> attn_mask;
  /// Eq. (4) pooling: [P, N], row q holds 1/N_q on the nodes of path q.
  tensor::GraphMatrix path_pool;

  tensor::Tensor slew_label;   ///< [P, 1] standardized golden slew
  tensor::Tensor delay_label;  ///< [P, 1] standardized golden delay

  std::vector<double> slew_seconds;   ///< raw golden slew per path (seconds)
  std::vector<double> delay_seconds;  ///< raw golden delay per path (seconds)
};

/// A model's output for one sample.
struct WirePrediction {
  tensor::Tensor slew;   ///< [P, 1] standardized
  tensor::Tensor delay;  ///< [P, 1] standardized
};

}  // namespace gnntrans::nn
