#include "core/fault_injector.hpp"

#include <cmath>

namespace gnntrans::core {

namespace {

/// FNV-1a over the key bytes — stable across platforms (std::hash is not).
std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// splitmix64 finalizer: decorrelates seed/site/key mixes.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

FaultInjector& FaultInjector::global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::configure(const Config& config) {
  armed_.store(false, std::memory_order_release);
  seed_ = config.seed;
  site_mask_ = config.site_mask;
  const double p = std::fmin(std::fmax(config.probability, 0.0), 1.0);
  // p == 1 must always fire; the ladder below cannot represent 2^64.
  threshold_ = p >= 1.0 ? ~0ull
                        : static_cast<std::uint64_t>(
                              p * 18446744073709551615.0);  // p * (2^64 - 1)
  reset_counts();
  armed_.store(p > 0.0 && site_mask_ != 0, std::memory_order_release);
}

void FaultInjector::disarm() { armed_.store(false, std::memory_order_release); }

bool FaultInjector::would_fail(FaultSite site,
                               std::string_view key) const noexcept {
  if (!armed()) return false;
  const auto bit = 1u << static_cast<std::uint32_t>(site);
  if ((site_mask_ & bit) == 0) return false;
  const std::uint64_t h =
      mix(seed_ ^ mix(static_cast<std::uint64_t>(site) + 1) ^ fnv1a(key));
  return h <= threshold_;
}

bool FaultInjector::should_fail(FaultSite site, std::string_view key) {
  if (!would_fail(site, key)) return false;
  injected_[static_cast<std::size_t>(site)].fetch_add(
      1, std::memory_order_relaxed);
  return true;
}

std::uint64_t FaultInjector::injected_total() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : injected_) total += c.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t FaultInjector::injected_at(FaultSite site) const noexcept {
  return injected_[static_cast<std::size_t>(site)].load(
      std::memory_order_relaxed);
}

void FaultInjector::reset_counts() noexcept {
  for (auto& c : injected_) c.store(0, std::memory_order_relaxed);
}

}  // namespace gnntrans::core
