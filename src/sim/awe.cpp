#include "sim/awe.hpp"

#include <cmath>

namespace gnntrans::sim {

namespace {

constexpr double kLn2 = 0.693147180559945309;
constexpr double kLn4 = 1.386294361119890618;

/// Single-pole fallback: tau = Elmore delay.
AweTiming one_pole(double m1) {
  AweTiming t;
  t.delay = m1 * kLn2;
  t.slew = m1 * kLn4 / 0.6;  // t80 - t20 of an exp step is tau*ln4; 20/80 convention
  t.two_pole = false;
  return t;
}

/// Two-pole step response: v(t) = 1 + k1 e^{p1 t} + k2 e^{p2 t}.
struct TwoPole {
  double p1, p2, k1, k2;
  [[nodiscard]] double value(double t) const noexcept {
    return 1.0 + k1 * std::exp(p1 * t) + k2 * std::exp(p2 * t);
  }
};

/// First time v(t) crosses \p threshold, by bracket expansion + bisection.
double crossing(const TwoPole& model, double threshold, double t_scale) {
  double lo = 0.0;
  double hi = t_scale;
  // Expand until the threshold is bracketed (response is 0 at t=0, ->1).
  for (int i = 0; i < 64 && model.value(hi) < threshold; ++i) hi *= 2.0;
  if (model.value(hi) < threshold) return hi;  // never crosses (degenerate)
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (model.value(mid) < threshold)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace

std::vector<AweTiming> awe_two_pole(const Moments& moments) {
  std::vector<AweTiming> out(moments.m1.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double m1 = moments.m1[i];
    if (m1 <= 0.0) continue;  // source node: zero timing

    // Signed series coefficients: H(s) = 1 + c1 s + c2 s^2 + c3 s^3.
    const double c1 = -m1;
    const double c2 = moments.m2[i];
    const double c3 = -moments.m3[i];

    // Pade [1/2]: denominator 1 + b1 s + b2 s^2.
    const double det = c1 * c1 - c2;
    if (std::abs(det) < 1e-12 * c1 * c1) {
      out[i] = one_pole(m1);
      continue;
    }
    const double b1 = (c3 - c1 * c2) / det;
    const double b2 = (c2 * c2 - c1 * c3) / det;
    const double disc = b1 * b1 - 4.0 * b2;
    if (!(b2 > 0.0) || disc < 0.0) {
      out[i] = one_pole(m1);  // complex or unstable poles: fall back
      continue;
    }
    const double root = std::sqrt(disc);
    const double p1 = (-b1 + root) / (2.0 * b2);
    const double p2 = (-b1 - root) / (2.0 * b2);
    if (p1 >= 0.0 || p2 >= 0.0) {
      out[i] = one_pole(m1);
      continue;
    }

    const double a1 = c1 + b1;  // numerator 1 + a1 s
    TwoPole model;
    model.p1 = p1;
    model.p2 = p2;
    model.k1 = (1.0 + a1 * p1) / (b2 * p1 * (p1 - p2));
    model.k2 = (1.0 + a1 * p2) / (b2 * p2 * (p2 - p1));

    // Sanity: v(0) should be ~0; otherwise the fit is unusable.
    if (std::abs(model.value(0.0)) > 0.05) {
      out[i] = one_pole(m1);
      continue;
    }

    const double t50 = crossing(model, 0.5, m1);
    const double t20 = crossing(model, 0.2, m1);
    const double t80 = crossing(model, 0.8, m1);
    out[i].delay = t50;
    out[i].slew = (t80 - t20) / 0.6;
    out[i].two_pole = true;
  }
  return out;
}

std::vector<AweTiming> awe_two_pole(const rcnet::RcNet& net) {
  return awe_two_pole(compute_moments(net));
}

}  // namespace gnntrans::sim
