/// \file golden.hpp
/// Golden "sign-off" wire timer facade with runtime accounting.
///
/// Wraps the transient engine so callers (dataset generation, Table V runtime
/// comparison) have a single object playing PrimeTime-SI's role: it produces
/// the ground-truth per-sink wire delay/slew and tracks how much work that
/// costs, which is exactly the cost the learned estimator eliminates.
#pragma once

#include <chrono>
#include <cstdint>

#include "rcnet/rcnet.hpp"
#include "sim/transient.hpp"

namespace gnntrans::sim {

/// Accumulated cost of golden timing runs.
struct GoldenStats {
  std::uint64_t nets_timed = 0;
  std::uint64_t solver_steps = 0;
  double wall_seconds = 0.0;
};

/// The reference wire timer (see DESIGN.md: PrimeTime-SI substitution).
class GoldenTimer {
 public:
  GoldenTimer() = default;
  explicit GoldenTimer(TransientConfig config) : config_(config) {}

  /// Times every sink of \p net under the given input slew / drive resistance.
  [[nodiscard]] TransientResult time_net(const rcnet::RcNet& net,
                                         double input_slew,
                                         double driver_resistance = 0.0);

  [[nodiscard]] const TransientConfig& config() const noexcept { return config_; }
  [[nodiscard]] const GoldenStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = GoldenStats{}; }

 private:
  TransientConfig config_{};
  GoldenStats stats_{};
};

}  // namespace gnntrans::sim
