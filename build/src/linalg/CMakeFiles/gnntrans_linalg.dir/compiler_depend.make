# Empty compiler generated dependencies file for gnntrans_linalg.
# This may be replaced when dependencies are built.
