file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_allnets.dir/bench_table4_allnets.cpp.o"
  "CMakeFiles/bench_table4_allnets.dir/bench_table4_allnets.cpp.o.d"
  "bench_table4_allnets"
  "bench_table4_allnets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_allnets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
