/// \file ceff.hpp
/// Driver-side load reduction: O'Brien-Savarino pi-model and effective
/// capacitance.
///
/// NLDM gate tables are characterized against a lumped capacitor, but a
/// resistive net shields part of its capacitance from the driver. Sign-off
/// timers therefore (1) reduce the net's driving-point admittance to a
/// three-element pi-model from its first three admittance moments
/// (O'Brien-Savarino, ICCAD'89) and (2) collapse that pi into the single
/// "effective capacitance" that draws the same average current over the
/// output transition (Qian-Pullela-Pillage style). This module implements
/// both; STA can opt in via StaConfig.
#pragma once

#include "rcnet/rcnet.hpp"
#include "sim/moments.hpp"

namespace gnntrans::sim {

/// Three-element pi load: c_near at the driver, then r into c_far.
struct PiModel {
  double c_near = 0.0;  ///< farads
  double r = 0.0;       ///< ohms
  double c_far = 0.0;   ///< farads

  [[nodiscard]] double total_cap() const noexcept { return c_near + c_far; }
};

/// Reduces \p net to a pi-model via its driving-point admittance moments
/// (y1 = total capacitance is preserved exactly). Falls back to a pure
/// capacitor (r = 0, c_far = 0) when the moments degenerate (e.g. nets whose
/// resistance is negligible).
[[nodiscard]] PiModel reduce_to_pi(const rcnet::RcNet& net);

/// Effective capacitance of \p pi for a driver output transition of duration
/// \p transition_time (seconds, full ramp): matches the average current drawn
/// over the ramp. Always in [c_near, total_cap].
[[nodiscard]] double effective_capacitance(const PiModel& pi,
                                           double transition_time);

/// Convenience: pi reduction + Ceff in one call.
[[nodiscard]] double effective_capacitance(const rcnet::RcNet& net,
                                           double transition_time);

}  // namespace gnntrans::sim
