#include "core/estimator.hpp"

#include <fstream>
#include <stdexcept>

#include "tensor/serialize.hpp"

namespace gnntrans::core {

WireTimingEstimator WireTimingEstimator::train(
    const std::vector<features::WireRecord>& records, Options options) {
  if (records.empty())
    throw std::invalid_argument("WireTimingEstimator::train: no records");

  WireTimingEstimator est;
  est.standardizer_.fit(records);

  options.model.node_feature_dim = features::kNodeFeatureCount;
  options.model.path_feature_dim = features::kPathFeatureCount;
  est.model_ = nn::make_model(options.kind, options.model);

  const std::vector<nn::GraphSample> samples =
      features::make_samples(records, est.standardizer_);
  est.train_report_ = train_model(*est.model_, samples, options.train);
  return est;
}

std::vector<PathEstimate> WireTimingEstimator::estimate(
    const rcnet::RcNet& net, const features::NetContext& context) const {
  tensor::NoGradGuard no_grad;

  // Build an unlabeled record: features only, labels zero.
  features::WireRecord rec;
  rec.net = net;
  rec.context = context;
  rec.raw = features::extract_features(net, context);
  rec.non_tree = !net.is_tree();
  rec.slew_labels.assign(rec.raw.analysis.paths.size(), 0.0);
  rec.delay_labels.assign(rec.raw.analysis.paths.size(), 0.0);

  const nn::GraphSample sample = standardizer_.make_sample(rec);
  const nn::WirePrediction pred = model_->forward(sample);

  std::vector<PathEstimate> out;
  out.reserve(sample.path_count);
  for (std::size_t q = 0; q < sample.path_count; ++q) {
    PathEstimate pe;
    pe.sink = rec.raw.analysis.paths[q].sink;
    pe.slew = standardizer_.unstandardize_slew(pred.slew(q, 0));
    pe.delay = standardizer_.unstandardize_delay(pred.delay(q, 0));
    out.push_back(pe);
  }
  return out;
}

Evaluation WireTimingEstimator::evaluate(
    const std::vector<features::WireRecord>& records) const {
  const std::vector<nn::GraphSample> samples =
      features::make_samples(records, standardizer_);
  return evaluate_model(
      *model_, samples,
      [this](double z) { return standardizer_.unstandardize_slew(z); },
      [this](double z) { return standardizer_.unstandardize_delay(z); });
}

void WireTimingEstimator::save(std::ostream& out) const {
  tensor::write_header(out, "GNNTRANS_ESTIMATOR", 1);
  standardizer_.save(out);
  nn::save_model(out, *model_);
}

void WireTimingEstimator::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  save(out);
}

WireTimingEstimator WireTimingEstimator::load(std::istream& in) {
  tensor::check_header(in, "GNNTRANS_ESTIMATOR", 1);
  WireTimingEstimator est;
  est.standardizer_.load(in);
  est.model_ = nn::load_model(in);
  return est;
}

WireTimingEstimator WireTimingEstimator::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return load(in);
}

EstimatorWireSource::EstimatorWireSource(const WireTimingEstimator& estimator,
                                         const netlist::Design& design,
                                         const cell::CellLibrary& library)
    : estimator_(estimator), design_(design), library_(library) {
  net_by_name_.reserve(design.nets.size());
  for (std::size_t i = 0; i < design.nets.size(); ++i)
    net_by_name_.emplace(design.nets[i].rc.name, i);
}

std::vector<sim::SinkTiming> EstimatorWireSource::time_net(
    const rcnet::RcNet& net, double input_slew, double driver_resistance) {
  features::NetContext ctx;
  ctx.input_slew = input_slew;
  ctx.driver_resistance = driver_resistance;

  const auto it = net_by_name_.find(net.name);
  if (it != net_by_name_.end()) {
    const netlist::DesignNet& dnet = design_.nets[it->second];
    const cell::Cell& driver =
        library_.at(design_.instances[dnet.driver].cell_index);
    ctx.driver_strength = driver.drive_strength;
    ctx.driver_function = static_cast<std::uint32_t>(driver.function);
    for (netlist::InstanceId load : dnet.loads) {
      const cell::Cell& lc = library_.at(design_.instances[load].cell_index);
      ctx.loads.push_back(
          {lc.drive_strength, static_cast<std::uint32_t>(lc.function), lc.input_cap});
    }
  } else {
    // Unknown net (standalone use): neutral load context.
    ctx.loads.assign(net.sinks.size(), features::SinkLoad{});
  }

  const std::vector<PathEstimate> estimates = estimator_.estimate(net, ctx);
  std::vector<sim::SinkTiming> out;
  out.reserve(estimates.size());
  for (const PathEstimate& pe : estimates) {
    sim::SinkTiming st;
    st.sink = pe.sink;
    st.delay = pe.delay;
    st.slew = std::max(1e-12, pe.slew);  // guard downstream NLDM lookups
    st.settled = true;
    out.push_back(st);
  }
  return out;
}

}  // namespace gnntrans::core
