// Reproduces Table IV: wire slew/delay estimation accuracy (R^2) on *all*
// nets (tree + non-tree) of the 7 test benchmarks, same zoo as Table III.
#include <cstdio>

#include "support.hpp"

using namespace gnntrans;
using bench::TablePrinter;

int main() {
  const bench::Scale scale = bench::Scale::from_env();
  const auto lib = cell::CellLibrary::make_default();

  std::printf("=== Table IV reproduction: all-nets wire slew/delay R^2 ===\n\n");

  const auto datasets = bench::build_wire_datasets(scale, lib);
  const auto train_pool = bench::pool_training_records(datasets);
  std::printf("pooled training nets: %zu\n", train_pool.size());

  const auto zoo = bench::train_zoo(scale, train_pool);

  std::vector<std::string> headers{"Benchmark"};
  std::vector<int> widths{12};
  for (const auto& entry : zoo) {
    headers.push_back(entry->name());
    widths.push_back(14);
  }
  std::printf("\nWire Slew/Delay Estimation Accuracy of All Nets (R^2)\n");
  TablePrinter table(headers, widths);
  table.print_header();

  std::vector<double> slew_sum(zoo.size(), 0.0), delay_sum(zoo.size(), 0.0);
  std::size_t design_count = 0;
  for (const bench::BenchmarkData& data : datasets) {
    if (data.spec.training) continue;
    ++design_count;
    std::vector<std::string> row{data.spec.name};
    for (std::size_t m = 0; m < zoo.size(); ++m) {
      const auto [slew_r2, delay_r2] = zoo[m]->evaluate(data.records);
      slew_sum[m] += slew_r2;
      delay_sum[m] += delay_r2;
      row.push_back(TablePrinter::fmt_pair(slew_r2, delay_r2));
    }
    table.print_row(row);
  }
  std::vector<std::string> avg{"Average"};
  for (std::size_t m = 0; m < zoo.size(); ++m)
    avg.push_back(TablePrinter::fmt_pair(slew_sum[m] / design_count,
                                         delay_sum[m] / design_count));
  table.print_row(avg);

  std::printf(
      "\nPaper averages (Table IV): DAC20 0.803/0.770, GCNII 0.877/0.862, "
      "GraphSage 0.894/0.880,\n  GAT 0.873/0.861, Trans. 0.882/0.866, "
      "GNNTrans 0.990/0.986.\nShape to hold: every method improves vs Table "
      "III (tree nets are easier); GNNTrans stays best.\n");
  return 0;
}
