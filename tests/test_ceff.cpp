// Tests for the pi-model reduction and effective capacitance.
#include <gtest/gtest.h>

#include <random>

#include "netlist/generate.hpp"
#include "netlist/incremental.hpp"
#include "netlist/sta.hpp"
#include "rcnet/generate.hpp"
#include "sim/ceff.hpp"
#include "sim/transient.hpp"

namespace {

using namespace gnntrans;
using rcnet::RcNet;

RcNet chain(std::size_t n, double r, double c) {
  RcNet net;
  net.name = "chain";
  net.source = 0;
  net.sinks = {static_cast<rcnet::NodeId>(n - 1)};
  net.ground_cap.assign(n, c);
  for (rcnet::NodeId v = 1; v < n; ++v)
    net.resistors.push_back({static_cast<rcnet::NodeId>(v - 1), v, r});
  return net;
}

TEST(PiModel, PreservesTotalCapacitance) {
  std::mt19937_64 rng(2);
  rcnet::NetGenConfig cfg;
  cfg.coupling_prob = 0.0;
  for (int i = 0; i < 12; ++i) {
    const RcNet net = rcnet::generate_net(cfg, rng, "n");
    const sim::PiModel pi = sim::reduce_to_pi(net);
    EXPECT_NEAR(pi.total_cap(), net.total_ground_cap(),
                1e-6 * net.total_ground_cap());
    EXPECT_GE(pi.c_near, 0.0);
    EXPECT_GE(pi.c_far, 0.0);
    EXPECT_GE(pi.r, 0.0);
  }
}

TEST(PiModel, ResistiveChainShieldsMostCapacitance) {
  // Heavy series R: the far cap should dominate and r be significant.
  const RcNet net = chain(20, 300.0, 4e-15);
  const sim::PiModel pi = sim::reduce_to_pi(net);
  EXPECT_GT(pi.r, 100.0);
  EXPECT_GT(pi.c_far, pi.c_near * 0.2);
}

TEST(Ceff, NegligibleWireResistanceGivesTotalCap) {
  const RcNet net = chain(6, 0.01, 5e-15);
  const double ceff = sim::effective_capacitance(net, 4e-11);
  EXPECT_NEAR(ceff, net.total_ground_cap(), 0.02 * net.total_ground_cap());
}

TEST(Ceff, ShieldedNetShowsReducedLoad) {
  const RcNet net = chain(30, 400.0, 5e-15);
  const double ceff = sim::effective_capacitance(net, 2e-11);
  EXPECT_LT(ceff, 0.8 * net.total_ground_cap());
  EXPECT_GT(ceff, 0.0);
}

TEST(Ceff, MonotoneInTransitionTime) {
  // Slower transitions see more of the far capacitance.
  const RcNet net = chain(20, 200.0, 4e-15);
  const sim::PiModel pi = sim::reduce_to_pi(net);
  double previous = 0.0;
  for (double tr : {5e-12, 2e-11, 8e-11, 3e-10, 1e-9}) {
    const double ceff = sim::effective_capacitance(pi, tr);
    EXPECT_GE(ceff, previous);
    previous = ceff;
  }
  // Asymptotically the full cap is visible.
  EXPECT_NEAR(sim::effective_capacitance(pi, 1e-6), pi.total_cap(),
              0.01 * pi.total_cap());
}

TEST(Ceff, BoundedByNearAndTotalCap) {
  std::mt19937_64 rng(3);
  rcnet::NetGenConfig cfg;
  for (int i = 0; i < 12; ++i) {
    const RcNet net = rcnet::generate_net(cfg, rng, "n");
    const sim::PiModel pi = sim::reduce_to_pi(net);
    for (double tr : {1e-12, 4e-11, 1e-9}) {
      const double ceff = sim::effective_capacitance(pi, tr);
      EXPECT_GE(ceff, pi.c_near - 1e-20);
      EXPECT_LE(ceff, pi.total_cap() + 1e-20);
    }
  }
}

TEST(Ceff, PiDriverWaveformMatchesFullNetBetterThanLumpedTotal) {
  // Drive the full net and compare the source-node t50 against driving the
  // lumped Ceff vs the lumped total cap: Ceff must be the better surrogate.
  const RcNet net = chain(25, 250.0, 5e-15);
  sim::TransientConfig tc;
  tc.si.enabled = false;
  tc.steps = 1500;
  const double r_drv = 150.0;
  const double slew = 3e-11;

  const auto full = sim::simulate(net, tc, slew, r_drv);
  const double t50_full = full.source_t50;

  auto lumped_t50 = [&](double cap) {
    RcNet lump;
    lump.name = "lump";
    lump.source = 0;
    lump.sinks = {1};
    lump.ground_cap = {cap * 0.5, cap * 0.5};
    lump.resistors = {{0, 1, 0.01}};
    return sim::simulate(lump, tc, slew, r_drv).source_t50;
  };
  const double ceff = sim::effective_capacitance(net, slew / 0.6);
  const double err_ceff = std::abs(lumped_t50(ceff) - t50_full);
  const double err_total = std::abs(lumped_t50(net.total_ground_cap()) - t50_full);
  EXPECT_LT(err_ceff, err_total);
}

TEST(CeffSta, IncrementalHonorsCeffConfig) {
  // IncrementalSta must use the same load model as run_sta under use_ceff.
  const auto lib = cell::CellLibrary::make_default();
  netlist::DesignGenConfig cfg;
  cfg.startpoints = 4;
  cfg.levels = 3;
  cfg.cells_per_level = 6;
  cfg.seed = 33;
  const netlist::Design d = netlist::generate_design(cfg, lib, "inc_ceff");
  sim::TransientConfig tc;
  tc.steps = 300;
  netlist::StaConfig sta_cfg;
  sta_cfg.use_ceff = true;

  netlist::GoldenWireSource w_full(tc), w_inc(tc);
  const auto full = netlist::run_sta(d, lib, w_full, sta_cfg);
  netlist::IncrementalSta inc(d, lib, w_inc, sta_cfg);
  ASSERT_EQ(full.endpoint_arrival.size(), inc.result().endpoint_arrival.size());
  for (std::size_t e = 0; e < full.endpoint_arrival.size(); ++e)
    EXPECT_NEAR(inc.result().endpoint_arrival[e], full.endpoint_arrival[e],
                1e-15 + 1e-9 * full.endpoint_arrival[e]);

  // And stays equal to a full rerun after a swap.
  const netlist::InstanceId victim = d.nets[0].driver;
  netlist::Design mutated = d;
  const auto inv4 = static_cast<std::uint32_t>(*lib.find("INV_X4"));
  const auto old_fn = lib.at(d.instances[victim].cell_index).function;
  if (cell::input_count(old_fn) == 1 && !cell::is_sequential(old_fn)) {
    inc.swap_cell(victim, inv4);
    mutated.instances[victim].cell_index = inv4;
    netlist::GoldenWireSource w_again(tc);
    const auto again = netlist::run_sta(mutated, lib, w_again, sta_cfg);
    for (std::size_t e = 0; e < again.endpoint_arrival.size(); ++e)
      EXPECT_NEAR(inc.result().endpoint_arrival[e], again.endpoint_arrival[e],
                  1e-15 + 1e-9 * again.endpoint_arrival[e]);
  }
}

TEST(CeffSta, ShieldingAwareArrivalsAreNoLater) {
  // With Ceff the drivers see lighter loads, so arrivals can only improve
  // (gate delay is monotone in load).
  const auto lib = cell::CellLibrary::make_default();
  netlist::DesignGenConfig cfg;
  cfg.startpoints = 5;
  cfg.levels = 4;
  cfg.cells_per_level = 7;
  cfg.seed = 21;
  const netlist::Design d = netlist::generate_design(cfg, lib, "ceff");
  sim::TransientConfig tc;
  tc.steps = 300;

  netlist::GoldenWireSource w1(tc), w2(tc);
  netlist::StaConfig total_cfg;
  netlist::StaConfig ceff_cfg;
  ceff_cfg.use_ceff = true;
  const auto total = netlist::run_sta(d, lib, w1, total_cfg);
  const auto with_ceff = netlist::run_sta(d, lib, w2, ceff_cfg);
  ASSERT_EQ(total.endpoint_arrival.size(), with_ceff.endpoint_arrival.size());
  double improved = 0.0;
  for (std::size_t e = 0; e < total.endpoint_arrival.size(); ++e) {
    EXPECT_LE(with_ceff.endpoint_arrival[e],
              total.endpoint_arrival[e] * 1.001 + 1e-15);
    improved += total.endpoint_arrival[e] - with_ceff.endpoint_arrival[e];
  }
  EXPECT_GT(improved, 0.0);  // shielding must matter somewhere
}

}  // namespace
