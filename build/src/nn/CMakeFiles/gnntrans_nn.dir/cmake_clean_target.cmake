file(REMOVE_RECURSE
  "libgnntrans_nn.a"
)
