// Tests for the model zoo: shapes, determinism, ablation wiring, save/load.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>

#include "nn/layers.hpp"
#include "nn/models.hpp"

namespace {

using namespace gnntrans;
using namespace gnntrans::nn;

/// Builds a synthetic 5-node / 2-path sample with all operators populated.
GraphSample toy_sample(std::uint64_t seed = 1, std::size_t dx = 12,
                       std::size_t dh = 8) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  const std::size_t n = 5, p = 2;

  GraphSample s;
  s.net_name = "toy";
  s.node_count = n;
  s.path_count = p;
  std::vector<float> x(n * dx), h(p * dh);
  for (float& v : x) v = dist(rng);
  for (float& v : h) v = dist(rng);
  s.x = tensor::Tensor::from_data(std::move(x), n, dx);
  s.h = tensor::Tensor::from_data(std::move(h), p, dh);

  // Chain topology 0-1-2-3-4.
  s.weighted_adj = tensor::GraphMatrix(n, n);
  s.mean_adj = tensor::GraphMatrix(n, n);
  s.gcnii_adj = tensor::GraphMatrix(n, n);
  s.attn_mask.assign(n * n, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    s.attn_mask[v * n + v] = 1;
    s.gcnii_adj.add(v, v, 0.5f);
    if (v + 1 < n) {
      s.weighted_adj.add(v, v + 1, 0.5f);
      s.weighted_adj.add(v + 1, v, 0.5f);
      s.mean_adj.add(v, v + 1, 0.5f);
      s.mean_adj.add(v + 1, v, 0.5f);
      s.gcnii_adj.add(v, v + 1, 0.25f);
      s.gcnii_adj.add(v + 1, v, 0.25f);
      s.attn_mask[v * n + v + 1] = 1;
      s.attn_mask[(v + 1) * n + v] = 1;
    }
  }
  s.path_pool = tensor::GraphMatrix(p, n);
  s.path_pool.add(0, 0, 0.5f);
  s.path_pool.add(0, 1, 0.5f);
  s.path_pool.add(1, 2, 1.0f / 3);
  s.path_pool.add(1, 3, 1.0f / 3);
  s.path_pool.add(1, 4, 1.0f / 3);

  s.slew_label = tensor::Tensor::from_data({0.1f, -0.2f}, p, 1);
  s.delay_label = tensor::Tensor::from_data({0.3f, 0.4f}, p, 1);
  s.slew_seconds = {1e-11, 2e-11};
  s.delay_seconds = {3e-11, 4e-11};
  return s;
}

ModelConfig small_config() {
  ModelConfig c;
  c.node_feature_dim = 12;
  c.path_feature_dim = 8;
  c.hidden_dim = 8;
  c.gnn_layers = 2;
  c.transformer_layers = 1;
  c.heads = 2;
  c.mlp_hidden = 8;
  c.seed = 42;
  return c;
}

const ModelKind kAllKinds[] = {ModelKind::kGnnTrans, ModelKind::kGraphSage,
                               ModelKind::kGcnii, ModelKind::kGat,
                               ModelKind::kGraphTransformer};

class EveryModel : public ::testing::TestWithParam<ModelKind> {};

TEST_P(EveryModel, ForwardProducesPerPathOutputs) {
  const auto model = make_model(GetParam(), small_config());
  const GraphSample s = toy_sample();
  const WirePrediction pred = model->forward(s);
  EXPECT_EQ(pred.slew.rows(), s.path_count);
  EXPECT_EQ(pred.slew.cols(), 1u);
  EXPECT_EQ(pred.delay.rows(), s.path_count);
  for (std::size_t q = 0; q < s.path_count; ++q) {
    EXPECT_TRUE(std::isfinite(pred.slew(q, 0)));
    EXPECT_TRUE(std::isfinite(pred.delay(q, 0)));
  }
}

TEST_P(EveryModel, DeterministicForSameSeed) {
  const auto a = make_model(GetParam(), small_config());
  const auto b = make_model(GetParam(), small_config());
  const GraphSample s = toy_sample();
  const WirePrediction pa = a->forward(s);
  const WirePrediction pb = b->forward(s);
  for (std::size_t q = 0; q < s.path_count; ++q) {
    EXPECT_FLOAT_EQ(pa.slew(q, 0), pb.slew(q, 0));
    EXPECT_FLOAT_EQ(pa.delay(q, 0), pb.delay(q, 0));
  }
}

TEST_P(EveryModel, DifferentSeedsGiveDifferentWeights) {
  ModelConfig c2 = small_config();
  c2.seed = 1234;
  const auto a = make_model(GetParam(), small_config());
  const auto b = make_model(GetParam(), c2);
  const GraphSample s = toy_sample();
  EXPECT_NE(a->forward(s).delay(0, 0), b->forward(s).delay(0, 0));
}

TEST_P(EveryModel, ParametersAreNonEmptyAndTrainable) {
  const auto model = make_model(GetParam(), small_config());
  const auto params = model->parameters();
  EXPECT_FALSE(params.empty());
  for (const auto& p : params) EXPECT_TRUE(p.requires_grad());
  EXPECT_GT(model->parameter_count(), 100u);
}

TEST_P(EveryModel, GradientsReachAllParameters) {
  const auto model = make_model(GetParam(), small_config());
  const GraphSample s = toy_sample();
  const WirePrediction pred = model->forward(s);
  tensor::Tensor loss = tensor::add(tensor::mse_loss(pred.slew, s.slew_label),
                                    tensor::mse_loss(pred.delay, s.delay_label));
  loss.backward();
  std::size_t touched = 0;
  for (const auto& p : model->parameters())
    if (!p.grad().empty()) ++touched;
  // Every parameter must be on the tape (grad allocated by backward).
  EXPECT_EQ(touched, model->parameters().size());
}

TEST_P(EveryModel, SaveLoadRoundTripPreservesForward) {
  const auto model = make_model(GetParam(), small_config());
  const GraphSample s = toy_sample();
  const WirePrediction before = model->forward(s);

  std::stringstream buf;
  save_model(buf, *model);
  const auto loaded = load_model(buf);
  EXPECT_EQ(loaded->kind(), GetParam());
  const WirePrediction after = loaded->forward(s);
  for (std::size_t q = 0; q < s.path_count; ++q) {
    EXPECT_FLOAT_EQ(before.slew(q, 0), after.slew(q, 0));
    EXPECT_FLOAT_EQ(before.delay(q, 0), after.delay(q, 0));
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, EveryModel, ::testing::ValuesIn(kAllKinds),
                         [](const auto& info) { return to_string(info.param); });

TEST(ModelFactory, NamesAreCanonical) {
  EXPECT_EQ(to_string(ModelKind::kGnnTrans), "GNNTrans");
  EXPECT_EQ(to_string(ModelKind::kGcnii), "GCNII");
}

TEST(ModelFactory, RejectsMissingDims) {
  ModelConfig c;  // node_feature_dim == 0
  EXPECT_THROW(make_model(ModelKind::kGraphSage, c), std::invalid_argument);
  ModelConfig c2 = small_config();
  c2.path_feature_dim = 0;
  EXPECT_THROW(make_model(ModelKind::kGnnTrans, c2), std::invalid_argument);
}

TEST(GnnTransAblations, PathFeatureFlagChangesInputDim) {
  ModelConfig with = small_config();
  ModelConfig without = small_config();
  without.use_path_features = false;
  const auto a = make_model(ModelKind::kGnnTrans, with);
  const auto b = make_model(ModelKind::kGnnTrans, without);
  // Dropping the concat shrinks the head input, hence the parameter count.
  EXPECT_GT(a->parameter_count(), b->parameter_count());
  // Both still run.
  const GraphSample s = toy_sample();
  (void)b->forward(s);
}

TEST(GnnTransAblations, EdgeWeightFlagSwitchesAggregator) {
  GraphSample s = toy_sample();
  // Make the two aggregation matrices radically different so the switch shows.
  s.weighted_adj = tensor::GraphMatrix(s.node_count, s.node_count);
  s.weighted_adj.add(0, 4, 1.0f);  // long-range fake edge
  ModelConfig weighted = small_config();
  ModelConfig mean = small_config();
  mean.use_edge_weights = false;
  const auto a = make_model(ModelKind::kGnnTrans, weighted);
  const auto b = make_model(ModelKind::kGnnTrans, mean);
  // Identical seeds: any output difference comes from the aggregator choice.
  EXPECT_NE(a->forward(s).delay(0, 0), b->forward(s).delay(0, 0));
}

TEST(GnnTransAblations, GlobalVsMaskedAttentionDiffer) {
  ModelConfig global = small_config();
  ModelConfig masked = small_config();
  masked.global_attention = false;
  const auto a = make_model(ModelKind::kGnnTrans, global);
  const auto b = make_model(ModelKind::kGnnTrans, masked);
  const GraphSample s = toy_sample();
  EXPECT_NE(a->forward(s).delay(0, 0), b->forward(s).delay(0, 0));
}

TEST(GnnTransAblations, CascadeFlagChangesDelayHeadInput) {
  ModelConfig cascade = small_config();
  ModelConfig independent = small_config();
  independent.cascade_delay_head = false;
  const auto a = make_model(ModelKind::kGnnTrans, cascade);
  const auto b = make_model(ModelKind::kGnnTrans, independent);
  EXPECT_GT(a->parameter_count(), b->parameter_count());
}

TEST(SelfAttention, RejectsIndivisibleHeads) {
  std::mt19937_64 rng(1);
  EXPECT_THROW(SelfAttentionLayer(7, 2, rng), std::invalid_argument);
}

TEST(Layers, MlpRejectsTooFewDims) {
  std::mt19937_64 rng(1);
  EXPECT_THROW(Mlp({4}, rng), std::invalid_argument);
}

TEST(Layers, LayerCountsScaleParameterCount) {
  ModelConfig shallow = small_config();
  ModelConfig deep = small_config();
  deep.gnn_layers = 6;
  deep.transformer_layers = 3;
  const auto a = make_model(ModelKind::kGnnTrans, shallow);
  const auto b = make_model(ModelKind::kGnnTrans, deep);
  EXPECT_GT(b->parameter_count(), a->parameter_count());
}

}  // namespace
