/// \file matrix.hpp
/// Dense double-precision matrix and vector utilities used by the MNA-based
/// timing engines (moment computation, transient simulation).
///
/// Wire RC nets are small (tens to a few hundred nodes), so a cache-friendly
/// row-major dense representation is the right tool for factorizations; the
/// sparse CSR path (sparse.hpp) exists for the larger coupled multi-net systems.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace gnntrans::linalg {

/// Row-major dense matrix of doubles.
///
/// Invariants: data_.size() == rows_ * cols_ at all times.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Creates a rows x cols matrix filled with \p fill.
  Matrix(std::size_t rows, std::size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Mutable view of row \p r.
  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::span<double> data() noexcept { return data_; }
  [[nodiscard]] std::span<const double> data() const noexcept { return data_; }

  /// Returns the identity matrix of size n.
  [[nodiscard]] static Matrix identity(std::size_t n);

  /// Matrix-vector product y = A x. Requires x.size() == cols().
  [[nodiscard]] std::vector<double> matvec(std::span<const double> x) const;

  /// Matrix-matrix product (this * other). Requires cols() == other.rows().
  [[nodiscard]] Matrix matmul(const Matrix& other) const;

  /// Transposed copy.
  [[nodiscard]] Matrix transposed() const;

  /// Adds \p value to the diagonal entry (i, i); convenient for MNA stamping.
  void add_diag(std::size_t i, double value) noexcept { (*this)(i, i) += value; }

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean norm of a vector.
[[nodiscard]] double norm2(std::span<const double> x) noexcept;

/// Dot product; requires a.size() == b.size().
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b) noexcept;

/// y += alpha * x (in place); requires y.size() == x.size().
void axpy(double alpha, std::span<const double> x, std::span<double> y) noexcept;

/// Element-wise maximum absolute difference between two equal-length vectors.
[[nodiscard]] double max_abs_diff(std::span<const double> a,
                                  std::span<const double> b) noexcept;

}  // namespace gnntrans::linalg
